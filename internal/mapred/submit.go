package mapred

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/mapred/jobtracker"
	"rdmamr/internal/obs"
)

// specPollInterval is how often an idle slot worker re-probes for work
// while any running job has speculation enabled: straggler eligibility
// is time-driven (an attempt BECOMES a straggler by outliving the
// threshold), so a purely event-driven parked worker would never see it.
const specPollInterval = 10 * time.Millisecond

// jobTracker multiplexes N admitted jobs over the cluster's shared
// TaskTracker slots: one fixed pool of slot workers (trackers ×
// mapred.tasktracker.map.tasks.maximum plus trackers ×
// mapred.tasktracker.reduce.tasks.maximum, sized from the cluster
// configuration) pulls attempts through a per-kind deficit-weighted
// round-robin arbiter, so every running job gets its fair share of each
// slot kind and a data-local placement is preferred across ALL jobs
// before any job settles for a remote split. Admission beyond
// mapred.jobtracker.max.running queues FIFO. Straggler detection
// (mapred.jobtracker.straggler.percent of the job's median completed
// attempt, after mapred.jobtracker.straggler.min.finished completions)
// gates speculative map execution; per-job cache isolation is wired
// separately through mapred.jobtracker.cache.job.quota.bytes.
type jobTracker struct {
	c            *Cluster
	adm          *jobtracker.Admission
	mapSched     *jobtracker.DWRR
	reduceSched  *jobtracker.DWRR
	mapSlots     int // per tracker
	reduceSlots  int // per tracker
	stragglerCfg jobtracker.StragglerConfig

	mu   sync.Mutex
	jobs map[string]*runningJob
	wake chan struct{} // closed+replaced whenever new work may appear
	// busyMaps/busyReduces count running attempts per host (all jobs) —
	// the dispatcher's free-slot view for per-host balance.
	busyMaps    map[string]int
	busyReduces map[string]int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newJobTracker(c *Cluster) *jobTracker {
	conf := c.conf
	return &jobTracker{
		c:           c,
		adm:         jobtracker.NewAdmission(int(conf.Int(config.KeyJTMaxRunning))),
		mapSched:    jobtracker.NewDWRR(),
		reduceSched: jobtracker.NewDWRR(),
		mapSlots:    int(conf.Int(config.KeyMapSlots)),
		reduceSlots: int(conf.Int(config.KeyReduceSlots)),
		stragglerCfg: jobtracker.StragglerConfig{
			RatioPercent: conf.Int(config.KeyJTStragglerPercent),
			MinFinished:  int(conf.Int(config.KeyJTStragglerMinFinished)),
		},
		jobs:        make(map[string]*runningJob),
		wake:        make(chan struct{}),
		busyMaps:    make(map[string]int),
		busyReduces: make(map[string]int),
		stop:        make(chan struct{}),
	}
}

// start launches the shared slot workers. The pool is cluster-lifetime:
// workers park between jobs rather than being respawned per job, which
// is what lets attempts from different jobs interleave on one node.
func (jt *jobTracker) start() {
	for ti, tt := range jt.c.trackers {
		for s := 0; s < jt.mapSlots; s++ {
			jt.wg.Add(1)
			go jt.worker(ti, tt, 'm', s)
		}
		for s := 0; s < jt.reduceSlots; s++ {
			jt.wg.Add(1)
			go jt.worker(ti, tt, 'r', s)
		}
	}
}

// shutdown asks every worker to exit at its next dispatch boundary.
// In-flight attempts are not waited for (their jobs fail through the
// closing shuffle servers, exactly as before this scheduler existed).
func (jt *jobTracker) shutdown() {
	jt.stopOnce.Do(func() { close(jt.stop) })
}

// kick wakes every parked worker — called whenever dispatchable work may
// have appeared (admission, completion, requeue, speculation clearance).
func (jt *jobTracker) kick() {
	jt.mu.Lock()
	close(jt.wake)
	jt.wake = make(chan struct{})
	jt.mu.Unlock()
}

func (jt *jobTracker) add(rj *runningJob) {
	jt.mu.Lock()
	jt.jobs[rj.info.ID] = rj
	jt.mapSched.Add(rj.info.ID, 1)
	jt.reduceSched.Add(rj.info.ID, 1)
	jt.mu.Unlock()
	jt.kick()
}

// forEachRunning calls fn on every currently running job, outside jt.mu.
func (jt *jobTracker) forEachRunning(fn func(*runningJob)) {
	jt.mu.Lock()
	jobs := make([]*runningJob, 0, len(jt.jobs))
	for _, rj := range jt.jobs {
		jobs = append(jobs, rj)
	}
	jt.mu.Unlock()
	for _, rj := range jobs {
		fn(rj)
	}
}

// remove deregisters a finishing job. Dispatch holds jt.mu across
// take+wg.Add, so after remove returns no NEW attempt of this job can
// start; rj.wg.Wait() then drains the in-flight ones.
func (jt *jobTracker) remove(jobID string) {
	jt.mu.Lock()
	delete(jt.jobs, jobID)
	jt.mapSched.Remove(jobID)
	jt.reduceSched.Remove(jobID)
	jt.mu.Unlock()
}

// worker is one shared slot of the given kind on tracker ti. It pulls
// attempts from whichever job the fair-share arbiter favors, parks on a
// down tracker until revive, and parks on wake (with a speculation
// re-probe timeout when relevant) when no job has work for it.
func (jt *jobTracker) worker(ti int, tt *TaskTracker, kind byte, slot int) {
	defer jt.wg.Done()
	c := jt.c
	for {
		select {
		case <-jt.stop:
			return
		default:
		}
		if up, changed := c.liveness.status(ti); !up {
			select {
			case <-changed:
			case <-jt.stop:
				return
			}
			continue
		}
		d := jt.dispatch(kind, tt.Host())
		if d.ok {
			// Wake the other parked workers before running: more work may
			// remain, and our taking a slot can change the balance
			// condition that parked them.
			jt.kick()
			if kind == 'm' {
				d.rj.runMapAttempt(ti, tt, slot, d.id, d.attempt, d.backup)
			} else {
				d.rj.runReduceAttempt(ti, tt, slot, d.id, d.attempt, d.backup)
			}
			continue
		}
		// d.wake was snapshotted inside dispatch's critical section, so a
		// kick that fires between the failed probe and this park still
		// wakes us — no lost wakeups.
		if d.poll > 0 {
			t := time.NewTimer(d.poll)
			select {
			case <-d.wake:
			case <-t.C:
			case <-jt.stop:
				t.Stop()
				return
			}
			t.Stop()
		} else {
			select {
			case <-d.wake:
			case <-jt.stop:
				return
			}
		}
	}
}

// pollLocked returns a park timeout when any running job of this kind
// may yet speculate (eligibility is time-driven), else 0 for pure
// event-driven parking.
func (jt *jobTracker) pollLocked(kind byte) time.Duration {
	for _, rj := range jt.jobs {
		q := rj.queue(kind)
		if q.speculate && !q.finished() {
			return specPollInterval
		}
	}
	return 0
}

// dispatchResult is one probe's outcome: either an attempt to run (ok)
// or the park parameters (wake snapshot + optional speculation re-probe
// timeout), taken under the same critical section as the failed probe.
type dispatchResult struct {
	rj          *runningJob
	id, attempt int
	backup, ok  bool
	wake        <-chan struct{}
	poll        time.Duration
}

// dispatch picks the next attempt for an idle slot: jobs are probed in
// fair-share order (most unspent DWRR credit first), first for
// data-local work across every job, then for anything. Within a job,
// per-host balance applies: a host already holding its share of the
// job's tasks (ceil(tasks/liveHosts)) leaves pending work for a live
// host with a free slot that is still under share — so a hot worker
// looping dispatch→run→dispatch cannot drain a whole job onto one node
// while other nodes' slots sit idle. The whole scan+take+wg.Add runs
// under jt.mu so a finishing job's remove() is a clean barrier: after
// it, no new attempt of that job can be handed out.
func (jt *jobTracker) dispatch(kind byte, host string) dispatchResult {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	sched := jt.mapSched
	if kind == 'r' {
		sched = jt.reduceSched
	}
	order := sched.Candidates(func(jid string) bool {
		j := jt.jobs[jid]
		return j != nil && j.ctx.Err() == nil && j.queue(kind).hasDispatchable()
	})
	live := jt.liveCountLocked()
	passes := []bool{true, false}
	if kind == 'r' {
		passes = []bool{false} // reduces carry no locality hints
	}
	for _, localOnly := range passes {
		for _, jid := range order {
			j := jt.jobs[jid]
			if j == nil || j.ctx.Err() != nil {
				continue
			}
			quota := (j.totalTasks(kind) + live - 1) / live
			if quota < 1 {
				quota = 1
			}
			pendingOK := j.assignedFor(kind)[host] < quota ||
				!jt.idleShareElsewhereLocked(j, kind, host, quota)
			tid, att, bk, took, _ := j.queue(kind).take(host, localOnly, pendingOK)
			if took {
				sched.Charge(jid, 1)
				j.wg.Add(1)
				jt.busyFor(kind)[host]++
				if !bk {
					j.assignedFor(kind)[host]++
				}
				return dispatchResult{rj: j, id: tid, attempt: att, backup: bk, ok: true}
			}
		}
	}
	return dispatchResult{wake: jt.wake, poll: jt.pollLocked(kind)}
}

func (jt *jobTracker) busyFor(kind byte) map[string]int {
	if kind == 'm' {
		return jt.busyMaps
	}
	return jt.busyReduces
}

func (jt *jobTracker) slotsFor(kind byte) int {
	if kind == 'm' {
		return jt.mapSlots
	}
	return jt.reduceSlots
}

func (jt *jobTracker) liveCountLocked() int {
	n := 0
	for i := range jt.c.trackers {
		if jt.c.liveness.isUp(i) {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// idleShareElsewhereLocked reports whether some OTHER live host has a
// free slot of this kind and is still under the job's per-host share —
// the condition under which an over-share host leaves pending work on
// the queue. Without such a host, balance yields to utilization: better
// an imbalanced assignment than an idle slot next to pending work.
func (jt *jobTracker) idleShareElsewhereLocked(j *runningJob, kind byte, host string, quota int) bool {
	slots := jt.slotsFor(kind)
	busy := jt.busyFor(kind)
	assigned := j.assignedFor(kind)
	for i, tt := range jt.c.trackers {
		h := tt.Host()
		if h == host || !jt.c.liveness.isUp(i) {
			continue
		}
		if busy[h] < slots && assigned[h] < quota {
			return true
		}
	}
	return false
}

// endAttempt releases the dispatcher's busy-slot accounting for a
// finished attempt (success, failure, or cancellation alike).
func (jt *jobTracker) endAttempt(kind byte, host string) {
	jt.mu.Lock()
	jt.busyFor(kind)[host]--
	jt.mu.Unlock()
}

// unassign returns a requeued task's share back from a host — it will
// be re-assigned wherever the task lands next.
func (jt *jobTracker) unassign(j *runningJob, kind byte, host string) {
	jt.mu.Lock()
	j.assignedFor(kind)[host]--
	jt.mu.Unlock()
}

// attemptKey names one in-flight attempt for loser cancellation.
type attemptKey struct {
	kind    byte
	task    int
	attempt int
}

// runningJob is one admitted job's scheduling state: its attempt queues,
// straggler detector, map-completion board, recovery hooks, and the
// in-flight attempt set the first finisher cancels its losers through.
type runningJob struct {
	c      *Cluster
	info   JobInfo
	job    *Job
	splits map[int]*split

	ctx    context.Context
	cancel context.CancelFunc

	mq, rq   *attemptQueue
	mapDet   *jobtracker.Stragglers // nil unless speculative maps
	board    *eventBoard
	losses   *TrackerLossFeed
	recovery *jobRecovery
	unwatch  func()

	// wg counts in-flight attempts; incremented under jt.mu at dispatch.
	wg sync.WaitGroup

	errOnce  sync.Once
	firstErr error

	amu      sync.Mutex
	inflight map[attemptKey]context.CancelFunc

	// mapsRunning/reducesRunning are the job's held-slot gauges, the
	// numbers /jobs.json reports as slot shares.
	mapsRunning    atomic.Int64
	reducesRunning atomic.Int64

	// mapAssigned/reduceAssigned count tasks assigned per host (guarded
	// by jt.mu) — the dispatcher's per-host balance state. A completed
	// task stays counted; a requeued one is returned via unassign.
	mapAssigned    map[string]int
	reduceAssigned map[string]int

	prof *obs.JobProfile
	tr   *obs.JobTrace
}

func (rj *runningJob) queue(kind byte) *attemptQueue {
	if kind == 'm' {
		return rj.mq
	}
	return rj.rq
}

func (rj *runningJob) assignedFor(kind byte) map[string]int {
	if kind == 'm' {
		return rj.mapAssigned
	}
	return rj.reduceAssigned
}

func (rj *runningJob) totalTasks(kind byte) int {
	if kind == 'm' {
		return rj.info.NumMaps
	}
	return rj.info.NumReduces
}

func (rj *runningJob) fail(err error) {
	if err == nil {
		return
	}
	rj.errOnce.Do(func() {
		rj.firstErr = err
		rj.cancel()
	})
}

// beginAttempt registers an in-flight attempt and returns its context
// (cancelled when the job ends, the node dies — via the attempt
// registry layered on top — or a sibling attempt wins the task) plus
// the deregistration func.
func (rj *runningJob) beginAttempt(kind byte, task, attempt int) (context.Context, func()) {
	actx, acancel := context.WithCancel(rj.ctx)
	key := attemptKey{kind: kind, task: task, attempt: attempt}
	rj.amu.Lock()
	rj.inflight[key] = acancel
	rj.amu.Unlock()
	return actx, func() {
		rj.amu.Lock()
		delete(rj.inflight, key)
		rj.amu.Unlock()
		acancel()
	}
}

// cancelLosers cancels every other in-flight attempt of the task: the
// first finisher committed, so the losers' remaining work is pure waste.
func (rj *runningJob) cancelLosers(kind byte, task, attempt int) {
	rj.amu.Lock()
	for k, cancel := range rj.inflight {
		if k.kind == kind && k.task == task && k.attempt != attempt {
			cancel()
		}
	}
	rj.amu.Unlock()
}

// runMapAttempt executes one map attempt on tt and routes its outcome:
// first-finisher-wins completion (losers cancelled, late duplicates
// discarded), budget-free requeue on node death, budgeted retry on real
// failure, fatal error on budget exhaustion.
func (rj *runningJob) runMapAttempt(ti int, tt *TaskTracker, slot, id, attempt int, backup bool) {
	defer rj.wg.Done()
	defer rj.c.jt.endAttempt('m', tt.Host())
	c := rj.c
	info := rj.info
	task := fmt.Sprintf("m%d", id)
	if backup {
		c.counters.Add("map.tasks.speculative", 1)
		c.counters.Add("mapred.map.task.attempts.speculated", 1)
		c.events.Append(obs.Event{Type: obs.EvAttemptSpeculated,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: "elapsed past straggler threshold"})
		c.events.Append(obs.Event{Type: obs.EvSpeculationLaunched,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: "straggler backup"})
	} else if rj.mapDet != nil {
		rj.mapDet.Started(id, time.Now())
	}
	tr := tt.TraceFor(info.ID)
	var lane string
	var dispatched time.Time
	if tr != nil {
		lane = fmt.Sprintf("map slot %d", slot)
		dispatched = time.Now()
	}
	rj.mapsRunning.Add(1)
	defer rj.mapsRunning.Add(-1)
	actx, done := rj.beginAttempt('m', id, attempt)
	actx, h := c.attempts.begin(actx, ti)
	err := c.runMapTask(actx, tt, info, rj.job, rj.splits[id], lane, attempt)
	killed := h.finish()
	done()
	if tr != nil {
		tr.Span(tt.Host(), lane, obs.CatSched,
			fmt.Sprintf("dispatch m%d@%d", id, attempt), dispatched, time.Now(),
			map[string]string{"corr": fmt.Sprintf("%s/m%d@%d", info.ID, id, attempt)})
	}
	if err == nil && killed {
		// Ran to completion on a node the scheduler killed mid-attempt:
		// its server is gone, so the output cannot be served. Discard
		// and reschedule.
		err = fmt.Errorf("mapred: map %d attempt %d: %s died mid-attempt", id, attempt, tt.Host())
	}
	if err == nil {
		if !rj.mq.complete(id) {
			c.counters.Add("map.tasks.duplicate.discarded", 1)
			c.events.Append(obs.Event{Type: obs.EvSpeculationLost,
				Job: info.ID, Task: task, Host: tt.Host(), Cause: "another attempt finished first"})
			return
		}
		if rj.mapDet != nil && !backup {
			rj.mapDet.Finished(id, time.Now())
		}
		rj.cancelLosers('m', id, attempt)
		if backup {
			c.events.Append(obs.Event{Type: obs.EvSpeculationWon,
				Job: info.ID, Task: task, Host: tt.Host()})
		}
		c.server(ti).MapOutputReady(info, id)
		rj.board.announce(MapEvent{MapID: id, Host: tt.Host()})
		c.jt.kick()
		return
	}
	if rj.mq.isDone(id) {
		// A cancelled loser: the task completed elsewhere while we ran.
		// Not a failure — no budget, no retry.
		return
	}
	if rj.ctx.Err() != nil && !killed {
		return // job is aborting, not this attempt's fault
	}
	c.counters.Add("map.task.attempts.failed", 1)
	if killed {
		if rj.mq.requeueKilled(id, backup) {
			c.jt.unassign(rj, 'm', tt.Host())
			c.counters.Add("map.task.attempts.retried", 1)
			c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
				Job: info.ID, Task: task, Host: tt.Host(), Cause: "node death"})
		}
		c.jt.kick()
		return
	}
	if backup {
		// A failed backup is harmless; the original attempt is still
		// running.
		return
	}
	requeued, fatal := rj.mq.fail(id)
	if requeued {
		c.jt.unassign(rj, 'm', tt.Host())
		c.counters.Add("map.task.attempts.retried", 1)
		c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: err.Error()})
		c.jt.kick()
	}
	if fatal {
		c.events.Append(obs.Event{Type: obs.EvAttemptExhausted,
			Job: info.ID, Task: task, Host: tt.Host(),
			Cause: fmt.Sprintf("failed after %d attempts: %v", rj.mq.attempts(id), err)})
		rj.fail(fmt.Errorf("map %d on %s failed after %d attempts: %w",
			id, tt.Host(), rj.mq.attempts(id), err))
	}
}

// runReduceAttempt executes one reduce attempt; duplicate attempts are
// arbitrated by the output-commit rename (first committer wins) and the
// winner cancels in-flight losers.
func (rj *runningJob) runReduceAttempt(ti int, tt *TaskTracker, slot, id, attempt int, backup bool) {
	defer rj.wg.Done()
	defer rj.c.jt.endAttempt('r', tt.Host())
	c := rj.c
	info := rj.info
	task := fmt.Sprintf("r%d", id)
	if backup {
		c.counters.Add("reduce.tasks.speculative", 1)
		c.counters.Add("mapred.reduce.task.attempts.speculated", 1)
		c.events.Append(obs.Event{Type: obs.EvAttemptSpeculated,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: "idle slot backup"})
		c.events.Append(obs.Event{Type: obs.EvSpeculationLaunched,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: "straggler backup"})
	}
	tr := tt.TraceFor(info.ID)
	var lane string
	var dispatched time.Time
	if tr != nil {
		lane = fmt.Sprintf("reduce slot %d", slot)
		dispatched = time.Now()
	}
	rj.reducesRunning.Add(1)
	defer rj.reducesRunning.Add(-1)
	events, unsubscribe := rj.board.subscribe()
	actx, done := rj.beginAttempt('r', id, attempt)
	actx, h := c.attempts.begin(actx, ti)
	committed, err := c.runReduceTask(actx, tt, info, rj.job, id, attempt, events, rj.recovery, rj.losses, lane)
	killed := h.finish()
	done()
	unsubscribe()
	if tr != nil {
		tr.Span(tt.Host(), lane, obs.CatSched,
			fmt.Sprintf("dispatch r%d@%d", id, attempt), dispatched, time.Now(),
			map[string]string{"corr": fmt.Sprintf("%s/r%d@%d", info.ID, id, attempt)})
	}
	if err == nil {
		if committed {
			// Unlike maps, in-flight duplicate attempts are NOT cancelled:
			// the output-commit rename is the arbiter, and the loser's
			// rename failing cleanly is the legacy (and test-pinned)
			// duplicate-discard path.
			rj.rq.complete(id)
			if backup {
				c.events.Append(obs.Event{Type: obs.EvSpeculationWon,
					Job: info.ID, Task: task, Host: tt.Host()})
			}
		} else {
			// Another attempt committed first; ours was discarded by
			// the rename arbiter.
			rj.rq.complete(id)
			c.counters.Add("reduce.tasks.duplicate.discarded", 1)
			c.events.Append(obs.Event{Type: obs.EvSpeculationLost,
				Job: info.ID, Task: task, Host: tt.Host(), Cause: "another attempt committed first"})
		}
		c.jt.kick()
		return
	}
	if rj.rq.isDone(id) {
		return // cancelled loser; the task committed elsewhere
	}
	if rj.ctx.Err() != nil && !killed {
		return
	}
	c.counters.Add("reduce.task.attempts.failed", 1)
	if killed {
		if rj.rq.requeueKilled(id, backup) {
			c.jt.unassign(rj, 'r', tt.Host())
			c.counters.Add("reduce.task.attempts.retried", 1)
			c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
				Job: info.ID, Task: task, Host: tt.Host(), Cause: "node death"})
		}
		c.jt.kick()
		return
	}
	if backup {
		return
	}
	requeued, fatal := rj.rq.fail(id)
	if requeued {
		c.jt.unassign(rj, 'r', tt.Host())
		c.counters.Add("reduce.task.attempts.retried", 1)
		c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
			Job: info.ID, Task: task, Host: tt.Host(), Cause: err.Error()})
		c.jt.kick()
	}
	if fatal {
		c.events.Append(obs.Event{Type: obs.EvAttemptExhausted,
			Job: info.ID, Task: task, Host: tt.Host(),
			Cause: fmt.Sprintf("failed after %d attempts: %v", rj.rq.attempts(id), err)})
		rj.fail(fmt.Errorf("reduce %d on %s failed after %d attempts: %w",
			id, tt.Host(), rj.rq.attempts(id), err))
	}
}

// JobHandle tracks one submitted job. Done closes when the job has
// fully finished — including output scrubbing on failure — so a waiter
// never observes a half-cleaned cluster.
type JobHandle struct {
	ID string

	c    *Cluster
	done chan struct{}
	res  *JobResult
	err  error
}

// Done returns a channel closed when the job has finished (either way).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its result, or returns
// early with ctx's error (the job keeps running; cancel the context
// passed to Submit to abort it).
func (h *JobHandle) Wait(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// wait blocks unconditionally — RunJob's semantics: when it returns,
// cleanup has happened.
func (h *JobHandle) wait() (*JobResult, error) {
	<-h.done
	return h.res, h.err
}

// Submit validates and registers a job, reserves its output directory,
// plans its splits, and hands it to the JobTracker: the job queues
// behind mapred.jobtracker.max.running running jobs, then competes for
// shared slots under fair-share scheduling. The returned handle reports
// completion; RunJob is Submit+wait.
func (c *Cluster) Submit(ctx context.Context, spec *Job) (*JobHandle, error) {
	job, err := spec.withDefaults(c.conf)
	if err != nil {
		return nil, err
	}
	if err := job.Conf.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("mapred: cluster closed")
	}
	if c.jobIDs[job.Name] {
		c.mu.Unlock()
		return nil, fmt.Errorf("mapred: job name %q already used", job.Name)
	}
	if owner, taken := c.outputs[job.Output]; taken {
		c.mu.Unlock()
		return nil, fmt.Errorf("mapred: output directory %s already reserved by job %s", job.Output, owner)
	}
	// The emptiness check runs under the same lock that grants the
	// reservation, closing the old submit/submit TOCTOU: at most one
	// live job owns an output directory, and it was empty when granted.
	if existing := c.fs.List(job.Output + "/"); len(existing) > 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("mapred: output directory %s not empty", job.Output)
	}
	c.jobIDs[job.Name] = true
	c.jobSeq++
	jobID := fmt.Sprintf("job_%04d_%s", c.jobSeq, job.Name)
	c.outputs[job.Output] = jobID
	c.mu.Unlock()

	splits, err := c.planSplits(job)
	if err != nil {
		c.releaseOutput(job.Output, jobID)
		return nil, err
	}
	numReduces := job.NumReduces
	if numReduces == 0 {
		numReduces = len(c.trackers) * int(job.Conf.Int(config.KeyReduceSlots))
	}
	info := JobInfo{
		ID: jobID, Conf: job.Conf, Comparator: job.Comparator,
		NumMaps: len(splits), NumReduces: numReduces,
	}
	h := &JobHandle{ID: jobID, c: c, done: make(chan struct{})}
	c.mu.Lock()
	c.jobStatus[jobID] = &jobStatus{
		id: jobID, name: job.Name, state: obs.JobStateQueued,
		submitted: time.Now(), maps: len(splits), reduces: numReduces,
	}
	c.jobOrder = append(c.jobOrder, jobID)
	c.mu.Unlock()
	go c.drive(ctx, h, job, info, splits)
	return h, nil
}

func (c *Cluster) releaseOutput(output, jobID string) {
	c.mu.Lock()
	if c.outputs[output] == jobID {
		delete(c.outputs, output)
	}
	c.mu.Unlock()
}

// drive owns one job's lifecycle: admission, queue construction,
// fair-share execution, and finalization (result assembly or scrub).
func (c *Cluster) drive(ctx context.Context, h *JobHandle, job *Job, info JobInfo, splits []*split) {
	jt := c.jt
	admit, queued := jt.adm.Submit(info.ID)
	if queued {
		running, waiting := jt.adm.Stats()
		c.counters.Add("mapred.jobtracker.jobs.queued", 1)
		c.events.Append(obs.Event{Type: obs.EvJobQueued, Job: info.ID,
			Cause: fmt.Sprintf("%d jobs running (max %d), %d queued", running, jt.adm.Max(), waiting)})
		select {
		case <-admit:
		case <-ctx.Done():
			if jt.adm.Cancel(info.ID) {
				c.finishJob(h, job, info, nil,
					fmt.Errorf("mapred: job %s cancelled while queued: %w", info.ID, ctx.Err()))
				return
			}
			<-admit // admitted while cancelling: run the normal (fast-failing) path
		case <-jt.stop:
			if jt.adm.Cancel(info.ID) {
				c.finishJob(h, job, info, nil, errors.New("mapred: cluster closed"))
				return
			}
			<-admit
		}
	}
	c.counters.Add("mapred.jobtracker.jobs.admitted", 1)
	c.events.Append(obs.Event{Type: obs.EvJobAdmitted, Job: info.ID})

	// Install the job's profile and trace under its OWN key — concurrent
	// jobs never clobber each other's instrumentation. Tracing needs the
	// profile's fetch spans, so enabling the trace forces a profile even
	// when profiling itself is off; the report is then not attached to
	// the result.
	profileOn := job.Conf.Bool(config.KeyObsProfile)
	traceOn := job.Conf.Bool(config.KeyObsTrace)
	var prof *obs.JobProfile
	if profileOn || traceOn {
		prof = obs.NewJobProfile(info.ID)
	}
	var tr *obs.JobTrace
	if traceOn {
		tr = obs.NewJobTrace(info.ID)
	}
	c.jobObs.install(info.ID, prof, tr)

	rj := &runningJob{
		c: c, info: info, job: job,
		splits:         make(map[int]*split, len(splits)),
		inflight:       make(map[attemptKey]context.CancelFunc),
		mapAssigned:    make(map[string]int),
		reduceAssigned: make(map[string]int),
		prof:           prof, tr: tr,
	}
	rj.ctx, rj.cancel = context.WithCancel(ctx)
	mapIDs := make([]int, 0, len(splits))
	hostHints := make(map[int][]string, len(splits))
	for _, sp := range splits {
		rj.splits[sp.id] = sp
		mapIDs = append(mapIDs, sp.id)
		hostHints[sp.id] = sp.hosts
	}
	rj.mq = newAttemptQueue(mapIDs, hostHints,
		int(info.Conf.Int(config.KeyMapMaxAttempts)),
		info.Conf.Bool(config.KeySpeculativeMaps))
	if info.Conf.Bool(config.KeySpeculativeMaps) {
		det := jobtracker.NewStragglers(jt.stragglerCfg, len(mapIDs))
		rj.mapDet = det
		rj.mq.setGate(func(id int) bool { return det.Straggler(id, time.Now()) })
	}
	reduceIDs := make([]int, info.NumReduces)
	for r := range reduceIDs {
		reduceIDs[r] = r
	}
	// Reduces keep the legacy eager speculation (no straggler gate): the
	// output-commit rename arbitrates duplicates, and an idle reduce slot
	// late in the job has nothing better to do.
	rj.rq = newAttemptQueue(reduceIDs, nil,
		int(info.Conf.Int(config.KeyReduceMaxAttempts)),
		info.Conf.Bool(config.KeySpeculativeReduces))
	rj.board = newEventBoard(info.NumMaps)
	rj.losses = NewTrackerLossFeed()
	rj.recovery = newJobRecovery(rj.ctx, c, info, job, splits)

	// React to decommissions for the duration of this job: tell
	// in-flight reducers the host is gone (they fast-fail its
	// connections) and re-execute its completed map outputs elsewhere so
	// fetchers that escalate find the replacement already running. The
	// re-executions run outside the attempt WaitGroup — they are bounded
	// by the job ctx and touch only job-scoped state.
	rj.unwatch = c.liveness.watch(func(ti int, host string) {
		rj.losses.Announce(host)
		for _, mapID := range rj.board.servedBy(host) {
			go func(mapID int) {
				if newHost, err := rj.recovery.RecoverAway(rj.ctx, mapID, host); err == nil {
					rj.board.relocate(mapID, newHost)
					c.events.Append(obs.Event{Type: obs.EvOutputRehosted,
						Job: info.ID, Task: fmt.Sprintf("m%d", mapID), Host: newHost,
						Cause: "map output lost with " + host})
				}
			}(mapID)
		}
	})

	before := c.counters.Snapshot()
	phasesBefore := c.phases.Snapshot()
	eventsBefore := c.events.Seq()
	start := time.Now()
	c.markRunning(info.ID, rj)
	jt.add(rj)

	success := false
	select {
	case <-rj.rq.doneCh: // every reduce committed: the job is done
		success = true
	case <-rj.ctx.Done(): // failed (rj.fail) or cancelled from outside
	case <-jt.stop:
		rj.fail(errors.New("mapred: cluster closed"))
	}
	jt.remove(info.ID)
	if success {
		// Let in-flight duplicate attempts finish naturally first — the
		// commit arbiters discard them, and their discard counters belong
		// to this job's result delta.
		rj.wg.Wait()
	}
	rj.cancel()
	rj.unwatch()
	rj.board.abort()
	rj.wg.Wait()

	err := rj.firstErr
	if err == nil && !rj.rq.finished() {
		err = rj.ctx.Err()
		if err == nil {
			err = ctx.Err()
		}
	}
	dur := time.Since(start)

	if err != nil {
		c.jobObs.remove(info.ID)
		if tr != nil {
			// A failed job's trace is the one most worth reading.
			c.lastTrace.Store(tr)
		}
		// Attach the scheduler events that fired during the job — the
		// expiry/re-host/retry story behind the failure.
		if evs := c.events.TailSince(eventsBefore, 32); len(evs) > 0 {
			err = fmt.Errorf("%w\nscheduler events during job:\n%s", err, obs.FormatEvents(evs))
		}
		// A failed or cancelled job must not leave partial output: the
		// directory was empty at admission, so everything under it —
		// committed parts from finished reduces, uncommitted attempt
		// temp files, abandoned writer placeholders — is ours to remove.
		for _, p := range c.fs.List(job.Output + "/") {
			_ = c.fs.Delete(p)
		}
		for i, tt := range c.trackers {
			c.server(i).JobComplete(info)
			tt.CleanupJob(info.ID)
		}
		c.counters.Add("mapred.jobtracker.jobs.failed", 1)
		c.events.Append(obs.Event{Type: obs.EvJobFailed, Job: info.ID})
		c.finishJob(h, job, info, nil, err)
		jt.adm.Release()
		jt.kick()
		return
	}

	// Commit-protocol debris: losing duplicate attempts delete their own
	// temp files, but attempts killed mid-write leave reserved names
	// under _temporary; clear the scratch dir before listing the output.
	for _, p := range c.fs.List(job.Output + "/_temporary/") {
		_ = c.fs.Delete(p)
	}
	for i, tt := range c.trackers {
		c.server(i).JobComplete(info)
		tt.CleanupJob(info.ID)
	}
	after := c.counters.Snapshot()
	delta := make(map[string]int64, len(after))
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			delta[k] = d
		}
	}
	phasesAfter := c.phases.Snapshot()
	phaseDelta := make(map[string]time.Duration, len(phasesAfter))
	for k, v := range phasesAfter {
		if d := v - phasesBefore[k]; d != 0 {
			phaseDelta[k] = d
		}
	}
	res := &JobResult{
		JobID: info.ID, Duration: dur,
		NumMaps: info.NumMaps, NumReduces: info.NumReduces,
		OutputFiles: c.fs.List(job.Output + "/"),
		Counters:    delta,
		Phases:      phaseDelta,
	}
	if prof != nil && profileOn {
		rep := prof.Report()
		res.Profile = rep
		c.lastReport.Store(rep)
	}
	if tr != nil {
		res.Trace = tr
		c.lastTrace.Store(tr)
	}
	c.jobObs.remove(info.ID)
	c.counters.Add("mapred.jobtracker.jobs.completed", 1)
	c.events.Append(obs.Event{Type: obs.EvJobCompleted, Job: info.ID})
	c.finishJob(h, job, info, res, nil)
	jt.adm.Release()
	jt.kick()
}

// markRunning flips a job's /jobs state to running and attaches its
// live scheduling handle.
func (c *Cluster) markRunning(jobID string, rj *runningJob) {
	c.mu.Lock()
	if st := c.jobStatus[jobID]; st != nil {
		st.state = obs.JobStateRunning
		st.started = time.Now()
		st.rj = rj
	}
	c.mu.Unlock()
}

// finishJob records the terminal state, releases the output-directory
// reservation, and unblocks waiters.
func (c *Cluster) finishJob(h *JobHandle, job *Job, info JobInfo, res *JobResult, err error) {
	c.mu.Lock()
	if st := c.jobStatus[info.ID]; st != nil {
		st.finished = time.Now()
		if rj := st.rj; rj != nil {
			st.mapsDone = rj.mq.completedCount()
			st.reducesDone = rj.rq.completedCount()
		}
		st.rj = nil
		if err != nil {
			st.state = obs.JobStateFailed
		} else {
			st.state = obs.JobStateSucceeded
		}
	}
	if c.outputs[job.Output] == info.ID {
		delete(c.outputs, job.Output)
	}
	c.mu.Unlock()
	h.res, h.err = res, err
	close(h.done)
}

// jobStatus is one job's row behind /jobs(.json).
type jobStatus struct {
	id, name          string
	state             string
	submitted         time.Time
	started, finished time.Time
	maps, reduces     int
	mapsDone          int
	reducesDone       int
	rj                *runningJob // nil once finished
}

// JobsReport snapshots the JobTracker's job listing for /jobs(.json):
// admission stats, slot capacity, and every known job with its current
// slot holdings.
func (c *Cluster) JobsReport() *obs.JobsReport {
	running, queued := c.jt.adm.Stats()
	n := len(c.trackers)
	rep := &obs.JobsReport{
		MaxRunning: c.jt.adm.Max(), Running: running, Queued: queued,
		TotalMapSlots:    n * c.jt.mapSlots,
		TotalReduceSlots: n * c.jt.reduceSlots,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.jobOrder {
		st := c.jobStatus[id]
		if st == nil {
			continue
		}
		js := obs.JobSummary{
			ID: st.id, Name: st.name, State: st.state,
			SubmittedAt: st.submitted, StartedAt: st.started, FinishedAt: st.finished,
			Maps: st.maps, Reduces: st.reduces,
			MapsDone: st.mapsDone, ReducesDone: st.reducesDone,
		}
		if rj := st.rj; rj != nil {
			js.MapsDone = rj.mq.completedCount()
			js.ReducesDone = rj.rq.completedCount()
			js.MapSlots = int(rj.mapsRunning.Load())
			js.ReduceSlots = int(rj.reducesRunning.Load())
			if rep.TotalMapSlots > 0 {
				js.MapShare = float64(js.MapSlots) / float64(rep.TotalMapSlots)
			}
			if rep.TotalReduceSlots > 0 {
				js.ReduceShare = float64(js.ReduceSlots) / float64(rep.TotalReduceSlots)
			}
		}
		rep.Jobs = append(rep.Jobs, js)
	}
	return rep
}
