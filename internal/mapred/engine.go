package mapred

import (
	"context"

	"rdmamr/internal/kv"
)

// MapEvent announces a completed MapTask to reduce-side fetchers — the
// signal the paper's Map Completion Fetcher waits on before telling
// copiers to request that map's output.
type MapEvent struct {
	MapID int
	Host  string // TaskTracker host serving the output
}

// ShuffleEngine is the pluggable shuffle/merge implementation seam. One
// engine instance serves a whole cluster: StartTracker is called once per
// TaskTracker at cluster start, NewReduceFetcher once per ReduceTask.
type ShuffleEngine interface {
	// Name identifies the engine in stats and figure legends.
	Name() string

	// StartTracker starts the tracker-side shuffle server (HTTP servlets
	// for vanilla, RDMAListener/Receiver/Responder for the RDMA designs).
	StartTracker(tt *TaskTracker) (TrackerServer, error)

	// NewReduceFetcher creates the reduce-side shuffle+merge pipeline for
	// one reduce task.
	NewReduceFetcher(task ReduceTaskInfo) (ReduceFetcher, error)
}

// TrackerServer is the per-TaskTracker shuffle serving side.
type TrackerServer interface {
	// MapOutputReady notifies the server that a completed map's output
	// partitions are available on local disk. The OSU engine's
	// MapOutputPrefetcher begins caching from this signal (§III-B.3).
	MapOutputReady(job JobInfo, mapID int)

	// JobComplete tells the server a job has finished so per-job state
	// (cached map outputs, pending prefetches) can be released.
	JobComplete(job JobInfo)

	// Close releases the server's resources.
	Close() error
}

// ReduceTaskInfo hands a reduce-side fetcher everything it needs.
type ReduceTaskInfo struct {
	Job      JobInfo
	ReduceID int
	// Attempt numbers this execution of the reduce (1 = original; retries
	// and speculative backups get fresh numbers). Engines may use it for
	// logging and correlation IDs.
	Attempt int
	// Events delivers map-completion events; the channel closes after the
	// final map completes. Buffered so the producer never blocks.
	Events <-chan MapEvent
	// Local is the TaskTracker executing this reduce task: its device is
	// the endpoint for RDMA traffic and its store backs disk spills.
	Local *TaskTracker
	// Hosts lists every TaskTracker host, so copiers can pre-establish
	// connections ("one RDMACopier sends such information to all
	// available TaskTrackers", §III-B.1).
	Hosts []string
	// RecoverMap requests re-execution of a map whose output can no
	// longer be fetched (lost disk, dead tracker). attempt starts at 1
	// and increments per retry of the same map by the same fetcher;
	// concurrent reports share one re-execution. It returns the host now
	// serving the regenerated (byte-identical) output. Nil disables
	// recovery: fetch failures then fail the reduce task.
	RecoverMap func(ctx context.Context, mapID, attempt int) (string, error)
	// Losses streams TaskTracker-death announcements from the cluster's
	// heartbeat failure detector. Engines that subscribe can fail a dead
	// host's connections immediately and escalate to RecoverMap instead
	// of waiting out request deadlines and reconnect budgets. Nil (and a
	// nil subscription) means no liveness information is available.
	Losses *TrackerLossFeed
}

// ReduceFetcher runs shuffle + merge for one reduce partition.
//
// The overlap contract (§III-B.4): Fetch may return as soon as merged
// records CAN be produced — a streaming engine (OSU-IB) returns an
// iterator whose Next blocks until data arrives, so the reduce function
// overlaps shuffle and merge; a barrier engine (vanilla) returns only
// after all merges complete.
type ReduceFetcher interface {
	Fetch(ctx context.Context) (kv.Iterator, error)
	// Close releases connections and buffers after the reduce finishes.
	Close() error
}
