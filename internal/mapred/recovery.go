package mapred

import (
	"context"
	"fmt"
	"sync"
)

// MaxMapRecoveries bounds re-execution attempts per map task, mirroring
// Hadoop's mapred.map.max.attempts (4 = 1 original + 3 retries).
const MaxMapRecoveries = 3

// jobRecovery coordinates map re-execution when reduce-side fetchers
// report lost map outputs — the "faster recovery in case of task
// failures" the paper lists as future work (§VI). Concurrent reports for
// the same (map, attempt) share one re-execution; each attempt is placed
// on a different node.
type jobRecovery struct {
	c      *Cluster
	ctx    context.Context
	info   JobInfo
	job    *Job
	splits map[int]*split

	mu      sync.Mutex
	entries map[recoveryKey]*recoveryEntry
}

type recoveryKey struct {
	mapID   int
	attempt int
}

type recoveryEntry struct {
	done chan struct{}
	host string
	err  error
}

func newJobRecovery(ctx context.Context, c *Cluster, info JobInfo, job *Job, splits []*split) *jobRecovery {
	byID := make(map[int]*split, len(splits))
	for _, sp := range splits {
		byID[sp.id] = sp
	}
	return &jobRecovery{
		c: c, ctx: ctx, info: info, job: job,
		splits:  byID,
		entries: make(map[recoveryKey]*recoveryEntry),
	}
}

// Recover re-executes map mapID for the given fetcher-side attempt
// number (1 for the first failure), returning the host now serving the
// regenerated output. Map functions are assumed deterministic (Hadoop's
// standing requirement), so the regenerated output is byte-identical and
// in-flight fetch offsets remain valid.
func (r *jobRecovery) Recover(ctx context.Context, mapID, attempt int) (string, error) {
	if attempt > MaxMapRecoveries {
		return "", fmt.Errorf("mapred: map %d unrecoverable: exhausted %d re-execution attempts",
			mapID, MaxMapRecoveries)
	}
	key := recoveryKey{mapID: mapID, attempt: attempt}
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		select {
		case <-e.done:
			return e.host, e.err
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	e := &recoveryEntry{done: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()
	// Place each attempt on a different node so a sick node does not
	// keep re-hosting the same output.
	r.execute(e, mapID, (mapID+attempt)%len(r.c.trackers), "")
	return e.host, e.err
}

// RecoverAway proactively re-executes mapID somewhere other than avoid —
// the decommission path re-hosting a dead tracker's completed outputs
// before reducers even notice. The re-execution registers under the next
// free fetcher-side attempt number, so a fetcher that fails against the
// dead host and escalates finds this entry and returns immediately with
// the replacement host.
func (r *jobRecovery) RecoverAway(ctx context.Context, mapID int, avoid string) (string, error) {
	r.mu.Lock()
	attempt := 1
	for {
		if _, ok := r.entries[recoveryKey{mapID: mapID, attempt: attempt}]; !ok {
			break
		}
		attempt++
	}
	if attempt > MaxMapRecoveries {
		r.mu.Unlock()
		return "", fmt.Errorf("mapred: map %d unrecoverable: exhausted %d re-execution attempts",
			mapID, MaxMapRecoveries)
	}
	e := &recoveryEntry{done: make(chan struct{})}
	r.entries[recoveryKey{mapID: mapID, attempt: attempt}] = e
	r.mu.Unlock()
	r.execute(e, mapID, (mapID+attempt)%len(r.c.trackers), avoid)
	return e.host, e.err
}

// execute runs one re-execution attempt on a live tracker at or after
// start (wrapping, skipping avoid when possible) and publishes the
// result into e.
func (r *jobRecovery) execute(e *recoveryEntry, mapID, start int, avoid string) {
	defer close(e.done)
	sp, ok := r.splits[mapID]
	if !ok {
		e.err = fmt.Errorf("mapred: recovery for unknown map %d", mapID)
		return
	}
	ti, ok := r.c.liveness.pickUp(start, avoid)
	if !ok {
		e.err = fmt.Errorf("mapred: map %d unrecoverable: no live tracker to re-execute on", mapID)
		return
	}
	tt := r.c.trackers[ti]
	// Recovery re-executions run outside the slot workers, so they get
	// their own trace lane rather than a slot's.
	e.err = r.c.runMapTask(r.ctx, tt, r.info, r.job, sp, "map recovery", 0)
	if e.err == nil {
		e.host = tt.Host()
		r.c.server(ti).MapOutputReady(r.info, mapID)
		r.c.counters.Add("map.tasks.recovered", 1)
	}
}
