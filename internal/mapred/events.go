package mapred

import "sync"

// eventBoard is the job's map-completion log. It replaces the old
// fire-and-forget per-reduce channels so that (a) every reduce *attempt*
// — including retries and speculative backups started long after the
// maps finished — receives the full event history, and (b) when a dead
// tracker's completed outputs are re-executed elsewhere, the log entry
// is relocated in place instead of broadcasting an extra event. The
// channel contract engines rely on is preserved exactly: a subscriber
// sees one event per map, then close.
//
// Relocation cannot retract an event already buffered in a live
// subscriber's channel; those fetchers hold a stale host and recover
// through the TrackerLossFeed fast-fail + RecoverMap escalation instead.
type eventBoard struct {
	mu      sync.Mutex
	numMaps int
	byMap   map[int]int // mapID -> index into log
	log     []MapEvent  // completion order
	subs    map[int]*boardSub
	next    int
	aborted bool
}

type boardSub struct {
	ch     chan MapEvent
	closed bool
}

func newEventBoard(numMaps int) *eventBoard {
	return &eventBoard{
		numMaps: numMaps,
		byMap:   make(map[int]int),
		subs:    make(map[int]*boardSub),
	}
}

// announce records a map completion and delivers it to all subscribers;
// after the final distinct map the subscriber channels close. Duplicate
// completions (a speculative loser finishing second) are ignored.
func (b *eventBoard) announce(ev MapEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return
	}
	if _, ok := b.byMap[ev.MapID]; ok {
		return
	}
	b.byMap[ev.MapID] = len(b.log)
	b.log = append(b.log, ev)
	for _, s := range b.subs {
		if !s.closed {
			s.ch <- ev
		}
	}
	if len(b.log) == b.numMaps {
		for _, s := range b.subs {
			if !s.closed {
				close(s.ch)
				s.closed = true
			}
		}
	}
}

// relocate updates the serving host of an already-announced map — the
// decommission path re-hosting a dead tracker's output. Future
// subscribers (reduce retries) see the new host in their replay.
func (b *eventBoard) relocate(mapID int, host string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i, ok := b.byMap[mapID]; ok {
		b.log[i].Host = host
	}
}

// servedBy lists the maps whose output the log currently attributes to
// host — the set a decommission must proactively re-execute.
func (b *eventBoard) servedBy(host string) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []int
	for _, ev := range b.log {
		if ev.Host == host {
			out = append(out, ev.MapID)
		}
	}
	return out
}

// subscribe opens a per-attempt event stream: a replay of the log so
// far, then live announcements, closing after the final map. The
// channel is buffered for the full job so announce never blocks.
func (b *eventBoard) subscribe() (<-chan MapEvent, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &boardSub{ch: make(chan MapEvent, b.numMaps+1)}
	for _, ev := range b.log {
		s.ch <- ev
	}
	if len(b.log) == b.numMaps || b.aborted {
		close(s.ch)
		s.closed = true
		return s.ch, func() {}
	}
	id := b.next
	b.next++
	b.subs[id] = s
	return s.ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sub, ok := b.subs[id]; ok {
			if !sub.closed {
				close(sub.ch)
				sub.closed = true
			}
			delete(b.subs, id)
		}
	}
}

// abort closes every subscriber channel so fetchers unblock when the
// job fails before all maps complete (belt and braces with ctx).
func (b *eventBoard) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	for _, s := range b.subs {
		if !s.closed {
			close(s.ch)
			s.closed = true
		}
	}
}
