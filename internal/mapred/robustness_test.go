package mapred_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/workload"
)

// assertNoJobDebris checks the invariant a failed or cancelled job must
// uphold: nothing under the output directory (no committed parts, no
// _temporary attempt files) and nothing left on tracker disks.
func assertNoJobDebris(t *testing.T, c *mapred.Cluster, outDir string) {
	t.Helper()
	if got := c.FS().List(outDir + "/"); len(got) != 0 {
		t.Fatalf("failed job left output files: %v", got)
	}
	for _, tt := range c.Trackers() {
		for _, prefix := range []string{"mapout/", "spill/"} {
			if got := tt.Store().List(prefix); len(got) != 0 {
				t.Fatalf("%s still holds %s files: %v", tt.Host(), prefix, got)
			}
		}
	}
}

func TestFailedJobLeavesOutputEmpty(t *testing.T) {
	// One reduce partition fails permanently while others may have
	// already committed their part files; the failed job must remove
	// everything under /out, committed parts included.
	c := newTestCluster(t, 2, nil)
	fs := c.FS()
	_ = fs.WriteFile("/fail/in", "", kv.WriteRun([]kv.Record{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	}))
	boom := errors.New("partition poison")
	_, err := c.RunJob(ctxT(t), &mapred.Job{
		Name: "cleanup-on-fail", Input: []string{"/fail/in"}, Output: "/fail/out",
		NumReduces: 2,
		Reducer: func(key []byte, values [][]byte, emit func(k, v []byte)) error {
			if string(key) == "b" {
				return boom
			}
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	assertNoJobDebris(t, c, "/fail/out")
}

func TestCancelledJobLeavesOutputEmpty(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	fs := c.FS()
	_ = fs.WriteFile("/cancel/in", "", kv.WriteRun([]kv.Record{{Key: []byte("k"), Value: []byte("v")}}))
	ctx, cancel := context.WithCancel(ctxT(t))
	defer cancel()
	_, err := c.RunJob(ctx, &mapred.Job{
		Name: "cleanup-on-cancel", Input: []string{"/cancel/in"}, Output: "/cancel/out",
		Mapper: func(key, value []byte, emit func(k, v []byte)) error {
			cancel() // the user aborts mid-map
			emit(key, value)
			return nil
		},
	})
	if err == nil {
		t.Fatal("cancelled job reported success")
	}
	assertNoJobDebris(t, c, "/cancel/out")
}

func TestReduceRetrySucceedsWithinBudget(t *testing.T) {
	// The reducer fails its first two attempts and then behaves; with
	// mapred.reduce.max.attempts=4 the job must recover and produce
	// correct output.
	c := newTestCluster(t, 2, nil)
	fs := c.FS()
	_ = fs.WriteFile("/rretry/in", "", kv.WriteRun([]kv.Record{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte("k2"), Value: []byte("v2")},
	}))
	var calls int32
	res, err := c.RunJob(ctxT(t), &mapred.Job{
		Name: "reduce-retry", Input: []string{"/rretry/in"}, Output: "/rretry/out",
		NumReduces: 1,
		Reducer: func(key []byte, values [][]byte, emit func(k, v []byte)) error {
			if atomic.AddInt32(&calls, 1) <= 2 {
				return errors.New("transient reduce fault")
			}
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("job should survive two reduce failures: %v", err)
	}
	if res.Counters["reduce.task.attempts.failed"] != 2 {
		t.Fatalf("reduce.task.attempts.failed = %d, want 2 (counters %v)",
			res.Counters["reduce.task.attempts.failed"], res.Counters)
	}
	if res.Counters["reduce.task.attempts.retried"] != 2 {
		t.Fatalf("reduce.task.attempts.retried = %d, want 2", res.Counters["reduce.task.attempts.retried"])
	}
	if res.Counters["reduce.records.out"] != 2 {
		t.Fatalf("reduce.records.out = %d, want 2", res.Counters["reduce.records.out"])
	}
	if len(res.OutputFiles) != 1 || !strings.HasSuffix(res.OutputFiles[0], "part-r-00000") {
		t.Fatalf("output files = %v", res.OutputFiles)
	}
	// The commit protocol must not leave attempt temp files behind.
	if tmp := fs.List("/rretry/out/_temporary/"); len(tmp) != 0 {
		t.Fatalf("temp attempt files survived: %v", tmp)
	}
}

func TestReduceRetryExhaustionFailsJob(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	fs := c.FS()
	_ = fs.WriteFile("/rexh/in", "", kv.WriteRun([]kv.Record{{Key: []byte("k"), Value: []byte("v")}}))
	boom := errors.New("permanent reduce fault")
	_, err := c.RunJob(ctxT(t), &mapred.Job{
		Name: "reduce-exhaust", Input: []string{"/rexh/in"}, Output: "/rexh/out",
		NumReduces: 1,
		Reducer: func(_ []byte, _ [][]byte, _ func(k, v []byte)) error {
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	// Default mapred.reduce.max.attempts is 4; the error must say which
	// reduce failed, where, and how many attempts were burned.
	if !strings.Contains(err.Error(), "reduce 0 on node") ||
		!strings.Contains(err.Error(), "failed after 4 attempts") {
		t.Fatalf("exhaustion error should name the reduce, host, and attempt count: %v", err)
	}
	assertNoJobDebris(t, c, "/rexh/out")
}

func TestReduceSpeculationFirstFinisherWins(t *testing.T) {
	conf := testConf()
	conf.SetBool(config.KeySpeculativeReduces, true)
	c := newTestCluster(t, 3, conf)
	fs := c.FS()
	paths, err := workload.TeraGen(fs, "/rspec/in", 600, 16<<10, 33)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := workload.SampleKeys(fs, paths, mapred.TeraInput, 200)
	if err != nil {
		t.Fatal(err)
	}
	part, err := kv.NewTotalOrderPartitioner(kv.SampleSplits(sample, 3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.ChecksumInput(fs, paths, mapred.TeraInput)
	if err != nil {
		t.Fatal(err)
	}

	// The first reduce invocation to run becomes an artificial straggler:
	// it blocks until the test releases it, long after its speculative
	// backup committed the partition.
	var straggler int32
	release := make(chan struct{})
	reducer := func(key []byte, values [][]byte, emit func(k, v []byte)) error {
		if atomic.CompareAndSwapInt32(&straggler, 0, 1) {
			<-release
		}
		for _, v := range values {
			emit(key, v)
		}
		return nil
	}

	type outcome struct {
		res *mapred.JobResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.RunJob(ctxT(t), &mapred.Job{
			Name: "reduce-speculative", Input: paths, Output: "/rspec/out",
			InputFormat: mapred.TeraInput, Partitioner: part,
			Reducer: reducer, NumReduces: 3,
		})
		done <- outcome{res, err}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for c.Counters().Get("reduce.tasks.speculative") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no speculative reduce attempt launched")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Counters["reduce.tasks.speculative"] == 0 {
		t.Fatalf("counters: %v", out.res.Counters)
	}
	if out.res.Counters["reduce.tasks.duplicate.discarded"] == 0 {
		t.Fatalf("losing attempt's commit was not discarded: %v", out.res.Counters)
	}
	// The rename arbiter guarantees exactly one committed part per
	// partition regardless of how many attempts raced.
	if len(out.res.OutputFiles) != 3 {
		t.Fatalf("output files = %v, want exactly 3 parts", out.res.OutputFiles)
	}
	if err := workload.Validate(fs, "/rspec/out", kv.BytesComparator, want, true); err != nil {
		t.Fatalf("output invalid with reduce speculation: %v", err)
	}
}

func TestReduceSpeculationOffByDefault(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	res := runTeraSort(t, c, 400, 3)
	if res.Counters["reduce.tasks.speculative"] != 0 {
		t.Fatalf("reduce speculation ran while disabled: %v", res.Counters)
	}
}
