package mapred_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var jobCounterRe = regexp.MustCompile(
	`(?:mapred\.tasktracker|mapred\.jobtracker|(?:map|reduce)\.task\.attempts)\.[a-z][a-z0-9._]*[a-z0-9]`)

// TestJobCounterNamesMatchDocs pins the job-layer robustness and
// scheduler namespaces (`mapred.tasktracker.*`, `mapred.jobtracker.*`,
// and `{map,reduce}.task.attempts.*` — config keys and counters alike)
// to the README's tables, exactly as the core package pins
// `shuffle.rdma.*`: every name used in this package's non-test sources
// must be documented, and every documented name must exist in the
// sources.
func TestJobCounterNamesMatchDocs(t *testing.T) {
	inCode := map[string]bool{}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range jobCounterRe.FindAllString(string(src), -1) {
			inCode[m] = true
		}
	}
	if len(inCode) == 0 {
		t.Fatal("no job-layer robustness counters found in package sources")
	}

	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	inDocs := map[string]bool{}
	for _, m := range jobCounterRe.FindAllString(string(readme), -1) {
		inDocs[m] = true
	}

	var undocumented, phantom []string
	for name := range inCode {
		if !inDocs[name] {
			undocumented = append(undocumented, name)
		}
	}
	for name := range inDocs {
		if !inCode[name] {
			phantom = append(phantom, name)
		}
	}
	sort.Strings(undocumented)
	sort.Strings(phantom)
	if len(undocumented) > 0 {
		t.Errorf("counters used in code but missing from README's job-layer table: %v", undocumented)
	}
	if len(phantom) > 0 {
		t.Errorf("counters documented in README but absent from the code: %v", phantom)
	}
}
