package mapred

import (
	"testing"
	"time"

	"rdmamr/internal/obs"
)

// TestHeartbeatHistogramsObserveIntervalAndRTT pins the telemetry the
// beat path records: heartbeat spacing (time since the tracker's
// previous beat) into mapred.tasktracker.heartbeat.interval, and the
// scheduler's per-beat processing time (the onBeat callback, which
// ships the node's metric delta) into mapred.tasktracker.heartbeat.rtt.
// Driven on the fake clock so both sums are exact.
func TestHeartbeatHistogramsObserveIntervalAndRTT(t *testing.T) {
	lv, clk, _ := testMonitor(t, []string{"node0", "node1"}, time.Second)
	reg := obs.NewRegistry()
	lv.hbInterval = reg.Histogram("mapred.tasktracker.heartbeat.interval")
	lv.hbRTT = reg.Histogram("mapred.tasktracker.heartbeat.rtt")
	// onBeat runs between the two clock reads that bracket the RTT, so
	// advancing here is exactly the simulated per-beat processing time.
	var beats []string
	lv.onBeat = func(_ int, host string) {
		beats = append(beats, host)
		clk.advance(3 * time.Millisecond)
	}

	// lastBeat starts at construction time, so the first beat observes a
	// real interval too: 40ms, then (3+60)=63ms measured from beat 1's
	// entry timestamp.
	clk.advance(40 * time.Millisecond)
	lv.beat(0)
	clk.advance(60 * time.Millisecond)
	lv.beat(0)

	iv := lv.hbInterval.Snapshot()
	if iv.Count != 2 || iv.Sum != 103*time.Millisecond {
		t.Fatalf("interval histogram = %d obs / %v sum, want 2 / 103ms", iv.Count, iv.Sum)
	}
	rtt := lv.hbRTT.Snapshot()
	if rtt.Count != 2 || rtt.Sum != 6*time.Millisecond {
		t.Fatalf("rtt histogram = %d obs / %v sum, want 2 / 6ms", rtt.Count, rtt.Sum)
	}
	if len(beats) != 2 || beats[0] != "node0" || beats[1] != "node0" {
		t.Fatalf("onBeat calls = %v, want [node0 node0]", beats)
	}

	// A killed tracker can't beat: suppressed beats are dropped before
	// any observation or delta shipping.
	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	clk.advance(40 * time.Millisecond)
	lv.beat(1)
	if got := lv.hbInterval.Snapshot().Count; got != 2 {
		t.Fatalf("suppressed beat observed an interval (count %d)", got)
	}
	if len(beats) != 2 {
		t.Fatalf("suppressed beat reached onBeat: %v", beats)
	}
}
