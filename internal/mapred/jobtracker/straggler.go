package jobtracker

import (
	"sort"
	"sync"
	"time"
)

// minStragglerThreshold floors the speculation threshold so that jobs
// whose attempts complete in microseconds (tiny test inputs, clock
// granularity) do not speculate every in-flight task the instant the
// median rounds to zero.
const minStragglerThreshold = time.Millisecond

// StragglerConfig tunes detection: an attempt is a straggler when its
// elapsed running time exceeds RatioPercent% of the median completed
// attempt duration, and at least MinFinished attempts (capped at
// numTasks-1 so the last task of a small job can still speculate) have
// completed to make the median meaningful.
type StragglerConfig struct {
	RatioPercent int64
	MinFinished  int
}

// Stragglers tracks attempt durations for one task kind of one job and
// answers "is this running task worth a backup attempt?" — Hadoop's
// speculative-execution heuristic, as a percentile test against the job
// median rather than vanilla Hadoop's progress-rate estimate (our
// attempts do not report fractional progress).
type Stragglers struct {
	mu      sync.Mutex
	cfg     StragglerConfig
	total   int
	started map[int]time.Time
	took    []time.Duration // completed attempt durations, unsorted
}

// NewStragglers returns a detector for a job with totalTasks tasks of
// this kind.
func NewStragglers(cfg StragglerConfig, totalTasks int) *Stragglers {
	if cfg.RatioPercent < 100 {
		cfg.RatioPercent = 100
	}
	if cfg.MinFinished < 1 {
		cfg.MinFinished = 1
	}
	return &Stragglers{cfg: cfg, total: totalTasks, started: make(map[int]time.Time)}
}

// Started records that an original (non-backup) attempt of task id began
// at the given time. A retry overwrites the start — elapsed time is
// measured from the newest original attempt, so a requeued task is not
// instantly condemned for its predecessor's failure.
func (s *Stragglers) Started(id int, at time.Time) {
	s.mu.Lock()
	s.started[id] = at
	s.mu.Unlock()
}

// Finished records a completed attempt of task id, contributing its
// duration to the job median.
func (s *Stragglers) Finished(id int, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start, ok := s.started[id]
	if !ok {
		return
	}
	delete(s.started, id)
	if d := at.Sub(start); d >= 0 {
		s.took = append(s.took, d)
	}
}

// Straggler reports whether task id's running attempt has outlived the
// speculation threshold: ratio × median of completed durations, once
// enough attempts have finished for the median to mean something.
func (s *Stragglers) Straggler(id int, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	start, ok := s.started[id]
	if !ok {
		return false
	}
	need := s.cfg.MinFinished
	if limit := s.total - 1; limit >= 1 && need > limit {
		need = limit
	}
	if len(s.took) < need {
		return false
	}
	sorted := append([]time.Duration(nil), s.took...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	threshold := time.Duration(int64(median) * s.cfg.RatioPercent / 100)
	if threshold < minStragglerThreshold {
		threshold = minStragglerThreshold
	}
	return now.Sub(start) > threshold
}

// Median exposes the current median completed duration (0 when nothing
// finished) — diagnostics and tests.
func (s *Stragglers) Median() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.took) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.took...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
