package jobtracker

import (
	"sort"
	"sync"
)

// DWRR arbitrates one slot kind (the map slots or the reduce slots)
// across jobs by deficit-weighted round-robin: every job accumulates
// credit (its weight) each time the live set runs dry of credit, each
// dispatched attempt costs one, and dispatch always tries the job with
// the most unspent credit first. Over time each job with work receives
// slots proportional to its weight, and a job that was briefly idle
// does not bank unbounded credit (its deficit resets while it has no
// dispatchable work — classic DWRR empty-queue semantics).
type DWRR struct {
	mu    sync.Mutex
	flows map[string]*flow
	order []string // registration order, the round-robin tiebreak
}

type flow struct {
	weight  int64
	deficit int64
}

// NewDWRR returns an empty arbiter.
func NewDWRR() *DWRR {
	return &DWRR{flows: make(map[string]*flow)}
}

// Add registers a job with the given weight (minimum 1). Re-adding an
// existing id only updates its weight.
func (d *DWRR) Add(id string, weight int64) {
	if weight < 1 {
		weight = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.flows[id]; ok {
		f.weight = weight
		return
	}
	d.flows[id] = &flow{weight: weight}
	d.order = append(d.order, id)
}

// Remove deregisters a finished job.
func (d *DWRR) Remove(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.flows[id]; !ok {
		return
	}
	delete(d.flows, id)
	for i, o := range d.order {
		if o == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Candidates returns the registered jobs that currently have
// dispatchable work, ordered most-deficit first (registration order
// breaks ties). Jobs without work have their deficit reset; when no
// active job has positive deficit, every active job is replenished by
// its weight first.
func (d *DWRR) Candidates(hasWork func(id string) bool) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var active []string
	maxDeficit := int64(-1 << 62)
	for _, id := range d.order {
		if hasWork(id) {
			active = append(active, id)
			if f := d.flows[id]; f.deficit > maxDeficit {
				maxDeficit = f.deficit
			}
		} else {
			d.flows[id].deficit = 0
		}
	}
	if len(active) == 0 {
		return nil
	}
	if maxDeficit <= 0 {
		for _, id := range active {
			f := d.flows[id]
			f.deficit += f.weight
		}
	}
	idx := make(map[string]int, len(d.order))
	for i, id := range d.order {
		idx[id] = i
	}
	sort.SliceStable(active, func(i, j int) bool {
		fi, fj := d.flows[active[i]], d.flows[active[j]]
		if fi.deficit != fj.deficit {
			return fi.deficit > fj.deficit
		}
		return idx[active[i]] < idx[active[j]]
	})
	return active
}

// Charge spends n credit from job id (one per dispatched attempt).
func (d *DWRR) Charge(id string, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.flows[id]; ok {
		f.deficit -= n
	}
}

// Deficit returns job id's unspent credit (0 when unknown).
func (d *DWRR) Deficit(id string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.flows[id]; ok {
		return f.deficit
	}
	return 0
}
