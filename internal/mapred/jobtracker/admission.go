// Package jobtracker provides the multi-tenant scheduling primitives the
// cluster's JobTracker composes: a bounded admission queue
// (mapred.jobtracker.max.running), a deficit-weighted round-robin
// fair-share arbiter for shared TaskTracker slots, and a straggler
// detector (attempt elapsed time vs. the job's median completed attempt
// duration) that gates speculative execution.
//
// The package is deliberately free of mapred types: everything is keyed
// by opaque job-ID strings and integer task IDs so the primitives are
// unit-testable without a cluster.
package jobtracker

import "sync"

// Admission is a FIFO admission queue bounding how many jobs run
// concurrently. Submit either admits immediately (an already-closed
// channel) or enqueues the job; Release admits the next queued job.
type Admission struct {
	mu      sync.Mutex
	max     int
	running int
	queue   []*ticket
}

type ticket struct {
	id string
	ch chan struct{}
}

// NewAdmission returns an admission queue running at most max jobs at
// once (minimum 1).
func NewAdmission(max int) *Admission {
	if max < 1 {
		max = 1
	}
	return &Admission{max: max}
}

// Max returns the configured concurrency bound.
func (a *Admission) Max() int { return a.max }

// Submit asks to run job id. The returned channel is closed when the job
// is admitted; queued reports whether the job had to wait (false means
// the channel is already closed).
func (a *Admission) Submit(id string) (admit <-chan struct{}, queued bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running < a.max {
		a.running++
		ch := make(chan struct{})
		close(ch)
		return ch, false
	}
	t := &ticket{id: id, ch: make(chan struct{})}
	a.queue = append(a.queue, t)
	return t.ch, true
}

// Cancel withdraws a still-queued job, returning true when it was
// removed before admission. False means the job was already admitted
// (or never queued): the caller then owns a running slot and must
// Release it.
func (a *Admission) Cancel(id string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, t := range a.queue {
		if t.id == id {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Release returns a running slot and admits the longest-queued job, if
// any.
func (a *Admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 {
		t := a.queue[0]
		a.queue = a.queue[1:]
		close(t.ch) // the slot transfers to the admitted job
		return
	}
	if a.running > 0 {
		a.running--
	}
}

// Stats returns how many jobs hold running slots and how many wait.
func (a *Admission) Stats() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.queue)
}
