package jobtracker

import (
	"testing"
	"time"
)

func TestAdmissionAdmitsUpToMax(t *testing.T) {
	a := NewAdmission(2)
	ch1, q1 := a.Submit("j1")
	ch2, q2 := a.Submit("j2")
	if q1 || q2 {
		t.Fatalf("first two jobs queued: %v %v", q1, q2)
	}
	for _, ch := range []<-chan struct{}{ch1, ch2} {
		select {
		case <-ch:
		default:
			t.Fatal("admitted channel not closed")
		}
	}
	ch3, q3 := a.Submit("j3")
	if !q3 {
		t.Fatal("third job must queue")
	}
	select {
	case <-ch3:
		t.Fatal("queued job admitted early")
	default:
	}
	if running, queued := a.Stats(); running != 2 || queued != 1 {
		t.Fatalf("stats = %d running, %d queued", running, queued)
	}
	a.Release() // j1 finishes; its slot transfers to j3
	select {
	case <-ch3:
	case <-time.After(time.Second):
		t.Fatal("release did not admit the queued job")
	}
	if running, queued := a.Stats(); running != 2 || queued != 0 {
		t.Fatalf("stats after release = %d running, %d queued", running, queued)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(1)
	a.Submit("j1")
	ch2, _ := a.Submit("j2")
	ch3, _ := a.Submit("j3")
	a.Release()
	select {
	case <-ch3:
		t.Fatal("j3 admitted before j2")
	default:
	}
	select {
	case <-ch2:
	default:
		t.Fatal("j2 not admitted")
	}
	a.Release()
	select {
	case <-ch3:
	default:
		t.Fatal("j3 not admitted")
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1)
	a.Submit("j1")
	a.Submit("j2")
	if !a.Cancel("j2") {
		t.Fatal("queued job must cancel")
	}
	if a.Cancel("j1") {
		t.Fatal("running job must not cancel (caller owns the slot)")
	}
	ch3, _ := a.Submit("j3")
	a.Release()
	select {
	case <-ch3:
	default:
		t.Fatal("cancelled job still blocked the queue")
	}
}

func TestDWRRSharesSlotsEvenly(t *testing.T) {
	d := NewDWRR()
	d.Add("a", 1)
	d.Add("b", 1)
	all := func(string) bool { return true }
	dispatched := map[string]int{}
	for i := 0; i < 100; i++ {
		order := d.Candidates(all)
		if len(order) != 2 {
			t.Fatalf("candidates = %v", order)
		}
		d.Charge(order[0], 1)
		dispatched[order[0]]++
	}
	if dispatched["a"] != 50 || dispatched["b"] != 50 {
		t.Fatalf("equal-weight jobs got %v, want 50/50", dispatched)
	}
}

func TestDWRRWeightsProportional(t *testing.T) {
	d := NewDWRR()
	d.Add("heavy", 3)
	d.Add("light", 1)
	all := func(string) bool { return true }
	dispatched := map[string]int{}
	for i := 0; i < 120; i++ {
		order := d.Candidates(all)
		d.Charge(order[0], 1)
		dispatched[order[0]]++
	}
	if dispatched["heavy"] != 90 || dispatched["light"] != 30 {
		t.Fatalf("3:1 weights got %v, want 90/30", dispatched)
	}
}

func TestDWRRIdleJobDeficitResets(t *testing.T) {
	d := NewDWRR()
	d.Add("a", 1)
	d.Add("b", 1)
	// b has no work for a while; it must not bank credit to spend later.
	onlyA := func(id string) bool { return id == "a" }
	for i := 0; i < 10; i++ {
		order := d.Candidates(onlyA)
		if len(order) != 1 || order[0] != "a" {
			t.Fatalf("candidates = %v", order)
		}
		d.Charge("a", 1)
	}
	if got := d.Deficit("b"); got != 0 {
		t.Fatalf("idle job banked deficit %d", got)
	}
	// When b wakes up it competes fairly, not with a hoard.
	all := func(string) bool { return true }
	dispatched := map[string]int{}
	for i := 0; i < 20; i++ {
		order := d.Candidates(all)
		d.Charge(order[0], 1)
		dispatched[order[0]]++
	}
	if dispatched["a"] != 10 || dispatched["b"] != 10 {
		t.Fatalf("after wake: %v, want 10/10", dispatched)
	}
}

func TestDWRRRemove(t *testing.T) {
	d := NewDWRR()
	d.Add("a", 1)
	d.Add("b", 1)
	d.Remove("a")
	order := d.Candidates(func(string) bool { return true })
	if len(order) != 1 || order[0] != "b" {
		t.Fatalf("candidates after remove = %v", order)
	}
}

func TestStragglerNeedsMinFinished(t *testing.T) {
	base := time.Unix(0, 0)
	s := NewStragglers(StragglerConfig{RatioPercent: 150, MinFinished: 3}, 8)
	s.Started(0, base)
	// Far past any threshold, but nothing has finished: no speculation.
	if s.Straggler(0, base.Add(time.Hour)) {
		t.Fatal("speculated with no completed attempts")
	}
	for id := 1; id <= 3; id++ {
		s.Started(id, base)
		s.Finished(id, base.Add(100*time.Millisecond))
	}
	// Median 100ms, ratio 150% → threshold 150ms.
	if s.Straggler(0, base.Add(120*time.Millisecond)) {
		t.Fatal("speculated below the threshold")
	}
	if !s.Straggler(0, base.Add(200*time.Millisecond)) {
		t.Fatal("did not speculate past 150% of median")
	}
}

func TestStragglerMinFinishedCappedBySmallJob(t *testing.T) {
	base := time.Unix(0, 0)
	// 2-task job with MinFinished 3: the cap (total-1 = 1) applies, else
	// the last task could never speculate.
	s := NewStragglers(StragglerConfig{RatioPercent: 150, MinFinished: 3}, 2)
	s.Started(0, base)
	s.Started(1, base)
	s.Finished(1, base.Add(10*time.Millisecond))
	if !s.Straggler(0, base.Add(time.Second)) {
		t.Fatal("small job could not speculate its last task")
	}
}

func TestStragglerThresholdFloor(t *testing.T) {
	base := time.Unix(0, 0)
	s := NewStragglers(StragglerConfig{RatioPercent: 150, MinFinished: 1}, 4)
	s.Started(0, base)
	s.Started(1, base)
	s.Finished(1, base) // 0-duration attempts: median 0
	if s.Straggler(0, base.Add(500*time.Microsecond)) {
		t.Fatal("zero median must not make every running task a straggler")
	}
	if !s.Straggler(0, base.Add(5*time.Millisecond)) {
		t.Fatal("floor must still allow detection past 1ms")
	}
}

func TestStragglerUnknownTask(t *testing.T) {
	s := NewStragglers(StragglerConfig{RatioPercent: 150, MinFinished: 1}, 4)
	if s.Straggler(9, time.Now()) {
		t.Fatal("unknown task reported as straggler")
	}
	s.Finished(9, time.Now()) // no-op, must not panic or skew the median
	if got := s.Median(); got != 0 {
		t.Fatalf("median from unstarted finish = %v", got)
	}
}
