package mapred_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/obs"
	"rdmamr/internal/workload"
)

// terasortSpec generates a seeded TeraGen input under /<name>/in and
// returns a ready-to-submit TeraSort spec plus the input checksum the
// output must reproduce (same records, globally sorted).
func terasortSpec(t *testing.T, c *mapred.Cluster, name string, rows, seed int64, reduces int) (*mapred.Job, workload.Checksum) {
	t.Helper()
	fs := c.FS()
	paths, err := workload.TeraGen(fs, "/"+name+"/in", rows, 16<<10, seed)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := workload.SampleKeys(fs, paths, mapred.TeraInput, 100)
	if err != nil {
		t.Fatal(err)
	}
	part, err := kv.NewTotalOrderPartitioner(kv.SampleSplits(sample, reduces))
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.ChecksumInput(fs, paths, mapred.TeraInput)
	if err != nil {
		t.Fatal(err)
	}
	return &mapred.Job{
		Name: name, Input: paths, Output: "/" + name + "/out",
		InputFormat: mapred.TeraInput, Partitioner: part, NumReduces: reduces,
	}, want
}

// waitReport polls the JobTracker's /jobs report until pred accepts it.
func waitReport(t *testing.T, c *mapred.Cluster, what string, pred func(*obs.JobsReport) bool) *obs.JobsReport {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rep := c.JobsReport()
		if pred(rep) {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs report never showed %s: %+v", what, rep)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentJobsByteIdentical is the headline multi-tenant case: two
// TeraSorts over different seeded inputs submitted to ONE cluster run
// concurrently on the shared slot pool, and each commits output
// checksum-identical to what a solo run of the same input produces
// (ordered validation against the input checksum pins exactly that).
func TestConcurrentJobsByteIdentical(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	jobA, wantA := terasortSpec(t, c, "tenant-a", 1500, 11, 3)
	jobB, wantB := terasortSpec(t, c, "tenant-b", 1500, 12, 3)

	ctx := ctxT(t)
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.Submit(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hA.Wait(ctx); err != nil {
		t.Fatalf("job A: %v", err)
	}
	if _, err := hB.Wait(ctx); err != nil {
		t.Fatalf("job B: %v", err)
	}
	if err := workload.Validate(c.FS(), jobA.Output, kv.BytesComparator, wantA, true); err != nil {
		t.Fatalf("job A output: %v", err)
	}
	if err := workload.Validate(c.FS(), jobB.Output, kv.BytesComparator, wantB, true); err != nil {
		t.Fatalf("job B output: %v", err)
	}
	if got := c.Counters().Get("mapred.jobtracker.jobs.admitted"); got != 2 {
		t.Fatalf("jobs.admitted = %d, want 2", got)
	}
	if got := c.Counters().Get("mapred.jobtracker.jobs.completed"); got != 2 {
		t.Fatalf("jobs.completed = %d, want 2", got)
	}
}

// gatedJob returns a WordCount-shaped job whose mappers all block on the
// returned release channel — a job that stays running (or queued) until
// the test says otherwise.
func gatedJob(t *testing.T, c *mapred.Cluster, name string) (*mapred.Job, chan struct{}) {
	t.Helper()
	if err := workload.WordGen(c.FS(), "/"+name+"/in", []string{"a", "b", "c"}, 20); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	return &mapred.Job{
		Name: name, Input: []string{"/" + name + "/in"}, Output: "/" + name + "/out",
		Mapper: func(_, value []byte, emit func(k, v []byte)) error {
			<-release
			if len(value) > 0 {
				emit(value, []byte("1"))
			}
			return nil
		},
		InputFormat: mapred.LineInput{}, NumReduces: 1,
	}, release
}

// TestAdmissionQueuesBeyondMaxRunning pins the admission queue: with
// mapred.jobtracker.max.running=1 the second submission parks in FIFO
// order — visible as "queued" on /jobs and in the jobs.queued counter —
// and is admitted only when the first job releases its slot.
func TestAdmissionQueuesBeyondMaxRunning(t *testing.T) {
	conf := testConf()
	conf.SetInt(config.KeyJTMaxRunning, 1)
	c := newTestCluster(t, 2, conf)
	ctx := ctxT(t)

	jobA, release := gatedJob(t, c, "adm-a")
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	waitReport(t, c, "job A running", func(r *obs.JobsReport) bool { return r.Running == 1 })

	jobB, wantB := terasortSpec(t, c, "adm-b", 400, 13, 2)
	hB, err := c.Submit(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	rep := waitReport(t, c, "job B queued", func(r *obs.JobsReport) bool { return r.Queued == 1 })
	if rep.Jobs[1].State != obs.JobStateQueued || rep.Jobs[1].Name != "adm-b" {
		t.Fatalf("second job not queued: %+v", rep.Jobs)
	}
	if got := c.Counters().Get("mapred.jobtracker.jobs.queued"); got != 1 {
		t.Fatalf("jobs.queued = %d, want 1", got)
	}
	// B must not be admitted while A holds the only admission slot.
	if got := c.Counters().Get("mapred.jobtracker.jobs.admitted"); got != 1 {
		t.Fatalf("jobs.admitted = %d while A still running, want 1", got)
	}

	close(release)
	if _, err := hA.Wait(ctx); err != nil {
		t.Fatalf("job A: %v", err)
	}
	if _, err := hB.Wait(ctx); err != nil {
		t.Fatalf("job B: %v", err)
	}
	if err := workload.Validate(c.FS(), jobB.Output, kv.BytesComparator, wantB, true); err != nil {
		t.Fatalf("job B output: %v", err)
	}
	if got := c.Counters().Get("mapred.jobtracker.jobs.admitted"); got != 2 {
		t.Fatalf("jobs.admitted = %d, want 2", got)
	}
}

// TestOutputReservationClosesTOCTOU pins the Submit-time output
// reservation: a second job naming a directory an admitted-but-unfinished
// job will write to is rejected at Submit — the old emptiness check alone
// raced (both directories empty at both submit times, data loss at
// commit). After the first job finishes, the directory is released but
// non-empty, so a resubmission trips the emptiness check instead.
func TestOutputReservationClosesTOCTOU(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	ctx := ctxT(t)

	jobA, release := gatedJob(t, c, "toctou")
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, &mapred.Job{
		Name: "toctou-b", Input: jobA.Input, Output: jobA.Output,
		Mapper:      jobA.Mapper,
		InputFormat: mapred.LineInput{}, NumReduces: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "already reserved") {
		t.Fatalf("overlapping output admitted: err = %v", err)
	}

	close(release)
	if _, err := hA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The reservation is gone, but the committed output now fails the
	// emptiness check — a different, accurate error.
	_, err = c.Submit(ctx, &mapred.Job{
		Name: "toctou-c", Input: jobA.Input, Output: jobA.Output,
		Mapper:      jobA.Mapper,
		InputFormat: mapred.LineInput{}, NumReduces: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "not empty") {
		t.Fatalf("committed output reusable: err = %v", err)
	}
}

// TestDuplicateJobNameRejectedWhileRunning: job names key profiles,
// traces, and output paths, so reuse is rejected at Submit even while
// the first holder is still running (the sequential case is pinned by
// TestDuplicateJobNameRejected).
func TestDuplicateJobNameRejectedWhileRunning(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	ctx := ctxT(t)
	jobA, release := gatedJob(t, c, "dupname")
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := terasortSpec(t, c, "dupname2", 200, 3, 1)
	spec.Name = "dupname"
	if _, err := c.Submit(ctx, spec); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Fatalf("duplicate name admitted: err = %v", err)
	}
	close(release)
	if _, err := hA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFairShareSlotSampling measures fairness the way the acceptance
// criterion states it: while two equal-weight jobs both have runnable
// maps, sample the per-job slot occupancy from the /jobs report; each
// job's mean share must be at least one third of its fair share (half
// the slots). DWRR should hold both near one half; one third catches a
// starving scheduler without flaking on scheduling noise.
func TestFairShareSlotSampling(t *testing.T) {
	c := newTestCluster(t, 2, nil) // 2 nodes x 2 map slots
	ctx := ctxT(t)

	mkJob := func(name string, seed int64) (*mapred.Job, workload.Checksum) {
		spec, want := terasortSpec(t, c, name, 1200, seed, 2)
		// Slow every record so maps run long enough to sample.
		spec.Mapper = func(key, value []byte, emit func(k, v []byte)) error {
			time.Sleep(time.Millisecond)
			emit(key, value)
			return nil
		}
		return spec, want
	}
	jobA, wantA := mkJob("fair-a", 21)
	jobB, wantB := mkJob("fair-b", 22)
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.Submit(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	samples := 0
	slots := map[string]int{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			rep := c.JobsReport()
			// Count only joint samples: both jobs running with map work left.
			live := 0
			for _, j := range rep.Jobs {
				if j.State == obs.JobStateRunning && j.MapsDone < j.Maps {
					live++
				}
			}
			if live != 2 {
				continue
			}
			mu.Lock()
			samples++
			for _, j := range rep.Jobs {
				slots[j.Name] += j.MapSlots
			}
			mu.Unlock()
		}
	}()

	if _, err := hA.Wait(ctx); err != nil {
		t.Fatalf("job A: %v", err)
	}
	if _, err := hB.Wait(ctx); err != nil {
		t.Fatalf("job B: %v", err)
	}
	close(stop)
	wg.Wait()

	if err := workload.Validate(c.FS(), jobA.Output, kv.BytesComparator, wantA, true); err != nil {
		t.Fatalf("job A output: %v", err)
	}
	if err := workload.Validate(c.FS(), jobB.Output, kv.BytesComparator, wantB, true); err != nil {
		t.Fatalf("job B output: %v", err)
	}
	if samples < 10 {
		t.Fatalf("only %d joint samples; jobs never overlapped on the slot pool", samples)
	}
	total := c.JobsReport().TotalMapSlots
	fairShare := float64(total) / 2
	for _, name := range []string{"fair-a", "fair-b"} {
		mean := float64(slots[name]) / float64(samples)
		t.Logf("%s: mean %.2f of %d map slots over %d samples (fair share %.1f)", name, mean, total, samples, fairShare)
		if mean < fairShare/3 {
			t.Errorf("%s starved: mean %.2f slots < 1/3 of fair share %.1f", name, mean, fairShare)
		}
	}
}

// TestPerJobProfileIsolation: with profiling on, two concurrent jobs get
// disjoint per-job reports — each keyed by its own job ID, each counting
// only its own reduces' fetches — not one blended cluster-wide profile.
func TestPerJobProfileIsolation(t *testing.T) {
	conf := testConf()
	conf.SetBool(config.KeyObsProfile, true)
	c := newTestCluster(t, 2, conf)
	ctx := ctxT(t)

	jobA, _ := terasortSpec(t, c, "prof-a", 800, 31, 2)
	jobB, _ := terasortSpec(t, c, "prof-b", 800, 32, 3)
	hA, err := c.Submit(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := c.Submit(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := hA.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := hB.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Profile == nil || resB.Profile == nil {
		t.Fatalf("profiles missing: A=%v B=%v", resA.Profile, resB.Profile)
	}
	if resA.Profile.JobID == resB.Profile.JobID {
		t.Fatalf("both jobs share profile %q", resA.Profile.JobID)
	}
	if resA.Profile.JobID != resA.JobID || resB.Profile.JobID != resB.JobID {
		t.Fatalf("profile/job mismatch: %q vs %q, %q vs %q",
			resA.Profile.JobID, resA.JobID, resB.Profile.JobID, resB.JobID)
	}
	// Each profile saw only its own job's reduces: the reduce-phase
	// timeline has one window per reduce task of THAT job. (Fetch-level
	// stats like TTFB are the core engine's instrumentation; this test
	// runs the HTTP ablation engine, which records phases only.)
	reduceWindows := func(rep *obs.Report) int {
		for _, ph := range rep.Phases {
			if ph.Phase == string(obs.PhaseReduce) {
				return len(ph.Windows)
			}
		}
		return 0
	}
	if got := reduceWindows(resA.Profile); got != 2 {
		t.Errorf("job A profile tracks %d reduce windows, want 2", got)
	}
	if got := reduceWindows(resB.Profile); got != 3 {
		t.Errorf("job B profile tracks %d reduce windows, want 3", got)
	}
}
