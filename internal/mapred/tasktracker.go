package mapred

import (
	"fmt"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/obs"
	"rdmamr/internal/stats"
	"rdmamr/internal/storage"
	"rdmamr/internal/ucr"
	"rdmamr/internal/verbs"
)

// TaskTracker is one slave node's task runtime: it owns the node's local
// disk (shared with its DataNode, as on a real slave), its HCA device,
// and its map/reduce slots. Shuffle engines are handed TaskTrackers on
// both the serving side (map outputs live in Store) and the reduce side
// (the local endpoint for fetching).
type TaskTracker struct {
	host     string
	store    *storage.LocalStore
	fab      *ucr.Fabric
	dev      *verbs.Device
	conf     *config.Config
	counters *stats.Counters
	// jobObs is the cluster's per-job profile/trace registry: task code
	// asks for the profile of the job it is running (keyed by jobID), so
	// concurrent jobs never see each other's instrumentation. A nil
	// registry, or a job with neither plane enabled, yields nils — the
	// disabled-observability fast path at every call site.
	jobObs *jobObsRegistry
	// nodeReg is this node's OWN registry (node.* namespace), distinct
	// from the cluster-wide one behind counters. Its counters are what
	// the DeltaShipper diffs and ships on the heartbeat path. Nil when
	// telemetry is off.
	nodeReg *obs.Registry
	// shipper turns nodeReg into per-heartbeat deltas for the
	// scheduler's ClusterView. Nil when telemetry is off.
	shipper *obs.DeltaShipper
	// events is the cluster's shared structured event log (servers
	// append lease-expiry events through it). Nil when telemetry is off.
	events *obs.EventLog
	// Pre-resolved nodeReg handles for the tracker's own hot paths
	// (nil handles when telemetry is off — free no-ops).
	nDiskReads   *obs.Counter
	nMapoutBytes *obs.Counter
}

// initNodeTelemetry attaches the per-node registry, its delta shipper,
// and the shared event log, pre-resolving the tracker's own counter
// handles. Called once by the cluster at construction.
func (tt *TaskTracker) initNodeTelemetry(reg *obs.Registry, events *obs.EventLog) {
	tt.nodeReg = reg
	tt.shipper = obs.NewDeltaShipper(tt.host, reg)
	tt.events = events
	tt.nDiskReads = reg.Counter("node.disk.reads")
	tt.nMapoutBytes = reg.Counter("node.mapout.bytes")
}

// ShipDelta collects this node's next telemetry delta (nil when
// telemetry is off). The liveness monitor calls it on every heartbeat.
func (tt *TaskTracker) ShipDelta(now time.Time) *obs.Delta {
	return tt.shipper.Collect(now)
}

// Host returns the node name.
func (tt *TaskTracker) Host() string { return tt.host }

// Conf returns the cluster configuration.
func (tt *TaskTracker) Conf() *config.Config { return tt.conf }

// Fabric returns the cluster's UCR fabric.
func (tt *TaskTracker) Fabric() *ucr.Fabric { return tt.fab }

// Device returns this node's verbs device.
func (tt *TaskTracker) Device() *verbs.Device { return tt.dev }

// Counters returns the cluster-wide stat counters.
func (tt *TaskTracker) Counters() *stats.Counters { return tt.counters }

// Registry returns the obs registry backing the counters, for components
// that want gauges or histograms alongside (and for the debug endpoint).
func (tt *TaskTracker) Registry() *obs.Registry { return tt.counters.Registry() }

// ProfileFor returns the given job's shuffle profile, or nil when
// profiling is off for that job — the nil IS the disabled profiler;
// every obs call site treats it as a free no-op.
func (tt *TaskTracker) ProfileFor(jobID string) *obs.JobProfile {
	if tt.jobObs == nil {
		return nil
	}
	return tt.jobObs.profileFor(jobID)
}

// TraceFor returns the given job's lifecycle trace, or nil when tracing
// is off for that job — the nil IS tracing off, free at every call site.
func (tt *TaskTracker) TraceFor(jobID string) *obs.JobTrace {
	if tt.jobObs == nil {
		return nil
	}
	return tt.jobObs.traceFor(jobID)
}

// Profile returns the newest running job's profile (nil when none).
// Job-scoped code should use ProfileFor; this remains for diagnostics
// that have no job in hand.
func (tt *TaskTracker) Profile() *obs.JobProfile {
	if tt.jobObs == nil {
		return nil
	}
	return tt.jobObs.latestProfile()
}

// Trace returns the newest running job's trace (nil when none). Same
// contract as Profile.
func (tt *TaskTracker) Trace() *obs.JobTrace {
	if tt.jobObs == nil {
		return nil
	}
	return tt.jobObs.latestTrace()
}

// NodeRegistry returns this node's own metric registry (node.* names,
// shipped to the scheduler as heartbeat deltas). Nil when cluster
// telemetry is off — obs handles from a nil registry are free no-ops.
func (tt *TaskTracker) NodeRegistry() *obs.Registry { return tt.nodeReg }

// Events returns the cluster's structured event log (nil when telemetry
// is off; Append on nil is a no-op).
func (tt *TaskTracker) Events() *obs.EventLog { return tt.events }

// Store exposes the node's local disk. Engines read map outputs from here
// (every Get is accounted disk traffic — the PrefetchCache's reason to
// exist) and spill reduce-side runs into it.
func (tt *TaskTracker) Store() *storage.LocalStore { return tt.store }

// MapOutput reads one map output partition from local disk. This is the
// accounted disk-read path the HTTP servlet, the Hadoop-A responder, and
// the OSU responder's cache-miss path all go through.
func (tt *TaskTracker) MapOutput(jobID string, mapID, partition int) ([]byte, error) {
	tt.counters.Add("tracker.mapoutput.disk.reads", 1)
	tt.nDiskReads.Add(1)
	return tt.store.Get(MapOutputKey(jobID, mapID, partition))
}

// MapOutputSize returns the stored size of a partition without a disk
// read (namespace metadata, as a real TaskTracker has in memory).
func (tt *TaskTracker) MapOutputSize(jobID string, mapID, partition int) (int64, error) {
	return tt.store.Size(MapOutputKey(jobID, mapID, partition))
}

// storeMapOutput persists one sorted partition of a map's output.
// Overwrite semantics allow recovery re-executions to replace a
// partially lost output with the regenerated (identical) bytes.
func (tt *TaskTracker) storeMapOutput(jobID string, mapID, partition int, run []byte) error {
	tt.store.Overwrite(MapOutputKey(jobID, mapID, partition), run)
	tt.nMapoutBytes.Add(int64(len(run)))
	return nil
}

// CleanupJob removes a finished job's map outputs and any leftover
// spill runs (an attempt aborted mid-spill never merges its spills away)
// from local disk.
func (tt *TaskTracker) CleanupJob(jobID string) {
	for _, prefix := range []string{"mapout", "spill"} {
		for _, name := range tt.store.List(fmt.Sprintf("%s/%s/", prefix, jobID)) {
			_ = tt.store.Delete(name)
		}
	}
}
