package mapred

import "sync"

// attemptQueue schedules attempts of one task kind (the map set or the
// reduce set) across slot workers. It generalizes the old splitQueue:
// locality-preferred dispatch, straggler speculation (one backup per
// task, first finisher wins), and — new — a per-task attempt budget
// (mapred.{map,reduce}.max.attempts) with requeue-on-failure, plus
// budget-free requeue when an attempt dies with its node rather than on
// its own. Attempt numbers are unique per task, giving retries and
// backups distinct temp output paths for the commit protocol.
type attemptQueue struct {
	mu        sync.Mutex
	pending   []int
	hosts     map[int][]string // locality hints; nil for reduces
	started   map[int]int      // attempts handed out (numbers 1..n)
	failed    map[int]int      // budget-consuming failures
	running   map[int]bool     // a non-backup attempt is in flight
	done      map[int]bool
	backed    map[int]bool
	remaining int
	budget    int // max attempts per task (>=1)
	speculate bool
	// gate, when non-nil, is consulted before a backup attempt is handed
	// out: speculation launches only for tasks the straggler detector
	// confirms. A nil gate keeps the legacy eager behaviour (any running
	// un-backed task may be speculated the moment a slot goes idle).
	gate func(id int) bool

	wake     chan struct{} // closed+replaced whenever work may appear
	doneCh   chan struct{} // closed when every task completed
	doneOnce sync.Once
}

func newAttemptQueue(ids []int, hosts map[int][]string, budget int, speculate bool) *attemptQueue {
	if budget < 1 {
		budget = 1
	}
	q := &attemptQueue{
		pending:   append([]int(nil), ids...),
		hosts:     hosts,
		started:   make(map[int]int),
		failed:    make(map[int]int),
		running:   make(map[int]bool),
		done:      make(map[int]bool),
		backed:    make(map[int]bool),
		remaining: len(ids),
		budget:    budget,
		speculate: speculate,
		wake:      make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	if q.remaining == 0 {
		close(q.doneCh)
	}
	return q
}

func (q *attemptQueue) wakeAllLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// setGate installs the speculation gate (see the field doc). Must be
// called before workers start taking from the queue.
func (q *attemptQueue) setGate(gate func(id int) bool) {
	q.mu.Lock()
	q.gate = gate
	q.mu.Unlock()
}

// take hands out the next attempt: a pending task with a replica on host
// first (data-local), then — unless localOnly — any pending task, then,
// with speculation, a backup of a running straggler. When nothing is
// available, wait is a channel to park on (nil means every task is done
// and the worker should exit). localOnly is the fair-share dispatcher's
// first pass: it probes every job for data-local work before settling
// for a remote split. pendingOK=false skips the pending picks entirely —
// the dispatcher's per-host balance says this host already holds its
// share of the job's tasks — while still allowing a speculative backup
// (a backup MUST be able to land on an already-loaded host, or a
// straggler could pin its job forever).
func (q *attemptQueue) take(host string, localOnly, pendingOK bool) (id, attempt int, backup, ok bool, wait <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	pick := -1
	if pendingOK {
		for i, cand := range q.pending {
			for _, h := range q.hosts[cand] {
				if h == host {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 && len(q.pending) > 0 && !localOnly {
			pick = 0
		}
	}
	if pick >= 0 {
		id = q.pending[pick]
		q.pending = append(q.pending[:pick], q.pending[pick+1:]...)
		q.running[id] = true
		q.started[id]++
		return id, q.started[id], false, true, nil
	}
	if q.speculate && !localOnly {
		for cand := range q.running {
			if !q.done[cand] && !q.backed[cand] && (q.gate == nil || q.gate(cand)) {
				q.backed[cand] = true
				q.started[cand]++
				return cand, q.started[cand], true, true, nil
			}
		}
	}
	if q.remaining == 0 {
		return 0, 0, false, false, nil
	}
	return 0, 0, false, false, q.wake
}

// isDone reports whether task id already has a winning completion — the
// check a cancelled duplicate attempt uses to tell "I lost the race"
// from "I failed".
func (q *attemptQueue) isDone(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.done[id]
}

// completedCount returns how many tasks have a winning completion.
func (q *attemptQueue) completedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.done)
}

// hasDispatchable reports whether a take could plausibly succeed: work
// is pending, or speculation could launch a backup. The gate is NOT
// consulted (it is time-dependent); the fair-share dispatcher treats a
// true here as "worth probing", not a guarantee.
func (q *attemptQueue) hasDispatchable() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) > 0 {
		return true
	}
	if !q.speculate {
		return false
	}
	for cand := range q.running {
		if !q.done[cand] && !q.backed[cand] {
			return true
		}
	}
	return false
}

// complete records a finished attempt, returning true for the FIRST
// completion of the task (later attempts are discarded duplicates).
func (q *attemptQueue) complete(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done[id] {
		return false
	}
	q.done[id] = true
	delete(q.running, id)
	q.remaining--
	if q.remaining == 0 {
		q.doneOnce.Do(func() { close(q.doneCh) })
	}
	q.wakeAllLocked()
	return true
}

// fail records a budget-consuming failure of a non-backup attempt.
// requeued means another attempt was scheduled; fatal means the budget
// is exhausted and the job must fail.
func (q *attemptQueue) fail(id int) (requeued, fatal bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done[id] {
		return false, false
	}
	q.failed[id]++
	if q.failed[id] >= q.budget {
		return false, true
	}
	delete(q.running, id)
	q.pending = append(q.pending, id)
	q.wakeAllLocked()
	return true, false
}

// attempts returns how many budget-consuming failures task id has had —
// at exhaustion this equals the budget, the count a fatal error reports.
func (q *attemptQueue) attempts(id int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failed[id]
}

// requeueKilled reschedules an attempt that died with its node: no
// budget is consumed (a machine failure is not the task's fault). A
// killed backup just clears the backed flag so a fresh backup may be
// speculated later; the original attempt is still running.
func (q *attemptQueue) requeueKilled(id int, backup bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done[id] {
		return false
	}
	if backup {
		q.backed[id] = false
		q.wakeAllLocked()
		return false
	}
	delete(q.running, id)
	q.pending = append(q.pending, id)
	q.wakeAllLocked()
	return true
}

func (q *attemptQueue) finished() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining == 0
}
