package mapred

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/hdfs"
	"rdmamr/internal/obs"
	"rdmamr/internal/stats"
	"rdmamr/internal/storage"
	"rdmamr/internal/ucr"
)

// Cluster is a functional MapReduce cluster: an HDFS instance whose
// DataNodes share local disks with the TaskTrackers (as on real slave
// nodes), one verbs device per node on a shared UCR fabric, and a shuffle
// engine started on every tracker.
type Cluster struct {
	fs       *hdfs.FileSystem
	conf     *config.Config
	engine   ShuffleEngine
	fabric   *ucr.Fabric
	trackers []*TaskTracker
	counters *stats.Counters
	phases   *stats.Phases

	// servers is index-aligned with trackers but mutable: ReviveTracker
	// replaces a decommissioned node's shuffle server with a fresh one.
	smu     sync.RWMutex
	servers []TrackerServer

	// liveness is the heartbeat failure detector; attempts registers
	// running task attempts per tracker so node death cancels them.
	liveness *livenessMonitor
	attempts *attemptRegistry

	// jobObs maps running jobs to their profiles and traces, keyed by
	// jobID — concurrent jobs each get their own instrumentation.
	// lastReport/lastTrace keep the most recent finished job's report and
	// trace so the debug endpoint can serve them between jobs (a failed
	// job's trace is worth the most when debugging).
	jobObs     *jobObsRegistry
	lastReport atomic.Pointer[obs.Report]
	lastTrace  atomic.Pointer[obs.JobTrace]
	// jt is the JobTracker: admission control, the shared slot-worker
	// pool, and the fair-share arbiter every running job's attempts
	// dispatch through.
	jt *jobTracker
	// events is the scheduler's structured event log (always on — its
	// producers are rare control-plane transitions, never data-path);
	// view merges heartbeat-shipped node deltas (nil with telemetry off).
	events  *obs.EventLog
	view    *obs.ClusterView
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	jobSeq int
	jobIDs map[string]bool
	// outputs maps a reserved output directory to the job holding the
	// reservation — granted at Submit (with the emptiness check under
	// this mutex) and released when the job finishes.
	outputs   map[string]string
	jobStatus map[string]*jobStatus
	jobOrder  []string
	closed    bool
}

// NewCluster builds a cluster of n nodes named node0..node{n-1} running
// the given shuffle engine. conf may be nil for defaults.
func NewCluster(n int, conf *config.Config, engine ShuffleEngine) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapred: cluster size %d", n)
	}
	if engine == nil {
		return nil, errors.New("mapred: cluster needs a shuffle engine")
	}
	if conf == nil {
		conf = config.New()
	}
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		fs:       hdfs.New(conf.Int(config.KeyBlockSize), int(conf.Int(config.KeyReplication))),
		conf:     conf,
		engine:   engine,
		fabric:   ucr.NewFabric(),
		counters: &stats.Counters{},
		phases:   &stats.Phases{},
		jobIDs:   make(map[string]bool),
		outputs:  make(map[string]string),
		jobObs:   newJobObsRegistry(),
	}
	c.jobStatus = make(map[string]*jobStatus)
	c.events = obs.NewEventLog(int(conf.Int(config.KeyObsEventsCap)))
	// Attach the fabric to the registry — and stand up the per-node
	// telemetry plane (node registries, delta shippers, cluster view) —
	// only when someone will look at the numbers: profiling, tracing, or
	// the debug endpoint. Detached (default), the ucr/verbs data path
	// stays clock-free and every node-metric handle is a nil no-op.
	telemetry := conf.Bool(config.KeyObsProfile) || conf.Bool(config.KeyObsTrace) ||
		conf.Get(config.KeyObsHTTPAddr) != ""
	if telemetry {
		c.fabric.SetRegistry(c.counters.Registry())
		c.view = obs.NewClusterView(int(conf.Int(config.KeyObsClusterWindow)))
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("node%d", i)
		dev, err := c.fabric.NewDevice(host)
		if err != nil {
			return nil, err
		}
		store := storage.NewLocalStore()
		if err := c.fs.AddDataNode(hdfs.NewDataNode(host, store)); err != nil {
			return nil, err
		}
		tt := &TaskTracker{
			host: host, store: store, fab: c.fabric, dev: dev,
			conf: conf, counters: c.counters, jobObs: c.jobObs,
		}
		var nodeReg *obs.Registry
		if telemetry {
			nodeReg = obs.NewRegistry()
		}
		tt.initNodeTelemetry(nodeReg, c.events)
		c.trackers = append(c.trackers, tt)
		srv, err := engine.StartTracker(tt)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: starting %s on %s: %w", engine.Name(), host, err)
		}
		c.servers = append(c.servers, srv)
	}
	hosts := make([]string, n)
	for i, tt := range c.trackers {
		hosts[i] = tt.Host()
	}
	c.attempts = newAttemptRegistry(n)
	c.liveness = newLivenessMonitor(hosts,
		time.Duration(conf.Int(config.KeyTrackerExpiry))*time.Millisecond,
		time.Now, c.decommission)
	// Telemetry rides the heartbeat path: every beat observes its spacing
	// and processing-time histograms and ships the node's metric delta
	// into the cluster view (nil shipper/view with telemetry off — the
	// beat then costs two nil-histogram checks).
	c.liveness.hbInterval = c.counters.Registry().Histogram("mapred.tasktracker.heartbeat.interval")
	c.liveness.hbRTT = c.counters.Registry().Histogram("mapred.tasktracker.heartbeat.rtt")
	c.liveness.onBeat = func(ti int, host string) {
		c.counters.Add("mapred.tasktracker.heartbeats", 1)
		c.view.Ingest(c.trackers[ti].ShipDelta(time.Now()))
	}
	// A decommissioned tracker whose heartbeats resume was never dead —
	// the expiry was a false positive (e.g. a starved beat goroutine on a
	// loaded machine). Re-admit it through the same path as an explicit
	// revive: fresh shuffle server, restored membership, woken workers.
	c.liveness.onRecover = func(ti int, host string) {
		_ = c.reviveTracker(host, "heartbeats resumed after expiry (false positive)")
	}
	// The JobTracker must exist before the sweep goroutine can run: the
	// recovery hook walks its running jobs.
	c.jt = newJobTracker(c)
	c.jt.start()
	c.liveness.start()
	if addr := conf.Get(config.KeyObsHTTPAddr); addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: observability endpoint on %s: %w", addr, err)
		}
		c.httpLn = ln
		c.httpSrv = &http.Server{Handler: obs.NewHandler(obs.HandlerSources{
			Registry: c.counters.Registry(),
			Profile:  c.ProfileReport,
			Cluster:  c.ClusterReport,
			Events:   c.events,
			Trace:    c.TraceReport,
			Jobs:     c.JobsReport,
		})}
		go func() { _ = c.httpSrv.Serve(ln) }()
	}
	return c, nil
}

// ObsAddr returns the listen address of the debug observability endpoint
// ("" when mapred.obs.http.addr is unset).
func (c *Cluster) ObsAddr() string {
	if c.httpLn == nil {
		return ""
	}
	return c.httpLn.Addr().String()
}

// ProfileReport snapshots the newest running job's shuffle profile,
// falling back to the last finished job's report; nil when nothing was
// profiled. Per-job reports are available through ProfileFor on any
// tracker while the job runs, and on its JobResult after.
func (c *Cluster) ProfileReport() *obs.Report {
	if p := c.jobObs.latestProfile(); p != nil {
		return p.Report()
	}
	return c.lastReport.Load()
}

// TraceReport returns the newest running job's lifecycle trace, falling
// back to the most recent job's; nil when nothing was traced.
func (c *Cluster) TraceReport() *obs.JobTrace {
	if t := c.jobObs.latestTrace(); t != nil {
		return t
	}
	return c.lastTrace.Load()
}

// ClusterReport snapshots the heartbeat-shipped per-node telemetry
// (nil when the telemetry plane is off).
func (c *Cluster) ClusterReport() *obs.ClusterReport {
	return c.view.Report(time.Now())
}

// ClusterView exposes the raw merged node-telemetry view (nil when the
// telemetry plane is off) — the surface an adaptive scheduler reads.
func (c *Cluster) ClusterView() *obs.ClusterView { return c.view }

// Events returns the scheduler's structured event log.
func (c *Cluster) Events() *obs.EventLog { return c.events }

// Registry returns the obs registry backing the cluster counters.
func (c *Cluster) Registry() *obs.Registry { return c.counters.Registry() }

// FS returns the cluster's HDFS (for loading inputs and reading outputs).
func (c *Cluster) FS() *hdfs.FileSystem { return c.fs }

// Conf returns the cluster configuration.
func (c *Cluster) Conf() *config.Config { return c.conf }

// Engine returns the shuffle engine.
func (c *Cluster) Engine() ShuffleEngine { return c.engine }

// Counters returns the cluster-wide counters.
func (c *Cluster) Counters() *stats.Counters { return c.counters }

// Trackers returns the TaskTrackers (for tests and diagnostics).
func (c *Cluster) Trackers() []*TaskTracker { return c.trackers }

// Servers returns the per-tracker shuffle servers, index-aligned with
// Trackers (for tests and diagnostics).
func (c *Cluster) Servers() []TrackerServer {
	c.smu.RLock()
	defer c.smu.RUnlock()
	return append([]TrackerServer(nil), c.servers...)
}

// server returns tracker ti's current shuffle server (revive replaces
// them, so index once under the lock).
func (c *Cluster) server(ti int) TrackerServer {
	c.smu.RLock()
	defer c.smu.RUnlock()
	return c.servers[ti]
}

func (c *Cluster) trackerIndex(host string) (int, error) {
	for i, tt := range c.trackers {
		if tt.Host() == host {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mapred: no tracker named %q", host)
}

// KillTracker simulates node death for tests and chaos schedules: the
// tracker's process is gone — heartbeats stop, its shuffle server shuts
// down (in-flight responder work errors out), and every task attempt
// running there is cancelled. The scheduler only learns of the death
// when the missing heartbeats exceed mapred.tasktracker.expiry.interval
// and the sweep decommissions the node. Killing the last live tracker
// is refused.
func (c *Cluster) KillTracker(host string) error {
	ti, err := c.trackerIndex(host)
	if err != nil {
		return err
	}
	if err := c.liveness.suppress(ti); err != nil {
		return err
	}
	c.attempts.killAll(ti)
	_ = c.server(ti).Close()
	return nil
}

// ReviveTracker restarts a killed or decommissioned tracker: a fresh
// shuffle server is started for it, heartbeats resume, membership is
// restored, and parked slot workers wake up and take new work.
func (c *Cluster) ReviveTracker(host string) error {
	return c.reviveTracker(host, "")
}

func (c *Cluster) reviveTracker(host, cause string) error {
	ti, err := c.trackerIndex(host)
	if err != nil {
		return err
	}
	if c.liveness.isUp(ti) {
		return nil
	}
	srv, err := c.engine.StartTracker(c.trackers[ti])
	if err != nil {
		return fmt.Errorf("mapred: reviving %s: %w", host, err)
	}
	c.smu.Lock()
	c.servers[ti] = srv
	c.smu.Unlock()
	c.liveness.revive(ti)
	// Stale death announcements would condemn the revived host to every
	// future reduce attempt; retract them so only subscribers that
	// already marked it lost still have to retry their way back.
	c.jt.forEachRunning(func(rj *runningJob) { rj.losses.Retract(host) })
	c.counters.Add("mapred.tasktracker.revived", 1)
	c.events.Append(obs.Event{Type: obs.EvTrackerRevived, Host: host, Cause: cause})
	return nil
}

// decommission is the liveness monitor's expiry hook: the scheduler has
// declared tracker ti dead. Its running attempts are cancelled, its
// responder is fenced off, and each running job's watcher (registered
// when the job was admitted) reschedules its work and re-hosts its
// completed map outputs.
func (c *Cluster) decommission(ti int, host string) {
	c.counters.Add("mapred.tasktracker.expired", 1)
	c.events.Append(obs.Event{Type: obs.EvHeartbeatExpired, Host: host,
		Cause: fmt.Sprintf("no heartbeat within %v", c.liveness.expiry)})
	c.counters.Add("mapred.tasktracker.decommissioned", 1)
	c.events.Append(obs.Event{Type: obs.EvTrackerDecommissioned, Host: host,
		Cause: "declared dead by liveness sweep"})
	c.view.MarkStale(host)
	c.attempts.killAll(ti)
	_ = c.server(ti).Close()
}

// Close shuts down the liveness monitor and the shuffle servers.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.jt != nil {
		c.jt.shutdown()
	}
	if c.liveness != nil {
		c.liveness.stopAll()
	}
	if c.httpSrv != nil {
		_ = c.httpSrv.Close()
	}
	for _, s := range c.Servers() {
		_ = s.Close()
	}
}

// JobResult summarizes a completed job.
type JobResult struct {
	JobID       string
	Duration    time.Duration
	NumMaps     int
	NumReduces  int
	OutputFiles []string
	// Counters holds the per-job delta of cluster counters.
	Counters map[string]int64
	// Phases holds the per-job delta of accumulated task-phase wall time
	// (map.task, reduce.shuffle, reduce.apply) summed across tasks.
	Phases map[string]time.Duration
	// Profile is the shuffle observability report, non-nil only when the
	// job ran with mapred.obs.profile.enabled.
	Profile *obs.Report
	// Trace is the job lifecycle trace (dispatch → map → shuffle →
	// merge → reduce spans, exportable as Chrome trace-event JSON via
	// Trace.ChromeTrace()), non-nil only with mapred.obs.trace.enabled.
	Trace *obs.JobTrace
}

// split is one map task's input: one block of a splittable file or a
// whole non-splittable file.
type split struct {
	id     int
	path   string
	blocks []hdfs.BlockLocation
	hosts  []string // candidate local hosts
}

func (c *Cluster) planSplits(job *Job) ([]*split, error) {
	var splits []*split
	for _, path := range job.Input {
		info, err := c.fs.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("mapred: input %s: %w", path, err)
		}
		if job.InputFormat.Splittable(c.fs.BlockSize()) {
			for _, bl := range info.Blocks {
				splits = append(splits, &split{
					id: len(splits), path: path,
					blocks: []hdfs.BlockLocation{bl}, hosts: bl.Hosts,
				})
			}
		} else {
			sp := &split{id: len(splits), path: path, blocks: info.Blocks}
			if len(info.Blocks) > 0 {
				sp.hosts = info.Blocks[0].Hosts
			}
			splits = append(splits, sp)
		}
	}
	if len(splits) == 0 {
		return nil, errors.New("mapred: no input splits")
	}
	return splits, nil
}

// RunJob executes a job to completion, returning its result. It is
// Submit followed by an unconditional wait: when RunJob returns, the
// job has fully finished — including output scrubbing on failure — so
// callers never observe a half-cleaned cluster. Cancel the passed
// context to abort the job.
func (c *Cluster) RunJob(ctx context.Context, spec *Job) (*JobResult, error) {
	h, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return h.wait()
}
