package mapred

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/hdfs"
	"rdmamr/internal/obs"
	"rdmamr/internal/stats"
	"rdmamr/internal/storage"
	"rdmamr/internal/ucr"
)

// Cluster is a functional MapReduce cluster: an HDFS instance whose
// DataNodes share local disks with the TaskTrackers (as on real slave
// nodes), one verbs device per node on a shared UCR fabric, and a shuffle
// engine started on every tracker.
type Cluster struct {
	fs       *hdfs.FileSystem
	conf     *config.Config
	engine   ShuffleEngine
	fabric   *ucr.Fabric
	trackers []*TaskTracker
	counters *stats.Counters
	phases   *stats.Phases

	// servers is index-aligned with trackers but mutable: ReviveTracker
	// replaces a decommissioned node's shuffle server with a fresh one.
	smu     sync.RWMutex
	servers []TrackerServer

	// liveness is the heartbeat failure detector; attempts registers
	// running task attempts per tracker so node death cancels them.
	liveness *livenessMonitor
	attempts *attemptRegistry

	// profile is the running job's shuffle profile (nil when profiling
	// is off); lastReport keeps the most recent finished job's report so
	// the debug endpoint can serve it between jobs. Both are atomic —
	// trackers and the HTTP handler read them concurrently with RunJob.
	profile    atomic.Pointer[obs.JobProfile]
	lastReport atomic.Pointer[obs.Report]
	// trace is the running job's lifecycle trace (nil when tracing is
	// off); lastTrace keeps the most recent job's trace — including a
	// failed job's, worth the most when debugging — for /trace.json.
	trace     atomic.Pointer[obs.JobTrace]
	lastTrace atomic.Pointer[obs.JobTrace]
	// events is the scheduler's structured event log (always on — its
	// producers are rare control-plane transitions, never data-path);
	// view merges heartbeat-shipped node deltas (nil with telemetry off).
	events  *obs.EventLog
	view    *obs.ClusterView
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	jobSeq int
	jobIDs map[string]bool
	closed bool
}

// NewCluster builds a cluster of n nodes named node0..node{n-1} running
// the given shuffle engine. conf may be nil for defaults.
func NewCluster(n int, conf *config.Config, engine ShuffleEngine) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapred: cluster size %d", n)
	}
	if engine == nil {
		return nil, errors.New("mapred: cluster needs a shuffle engine")
	}
	if conf == nil {
		conf = config.New()
	}
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		fs:       hdfs.New(conf.Int(config.KeyBlockSize), int(conf.Int(config.KeyReplication))),
		conf:     conf,
		engine:   engine,
		fabric:   ucr.NewFabric(),
		counters: &stats.Counters{},
		phases:   &stats.Phases{},
		jobIDs:   make(map[string]bool),
	}
	c.events = obs.NewEventLog(int(conf.Int(config.KeyObsEventsCap)))
	// Attach the fabric to the registry — and stand up the per-node
	// telemetry plane (node registries, delta shippers, cluster view) —
	// only when someone will look at the numbers: profiling, tracing, or
	// the debug endpoint. Detached (default), the ucr/verbs data path
	// stays clock-free and every node-metric handle is a nil no-op.
	telemetry := conf.Bool(config.KeyObsProfile) || conf.Bool(config.KeyObsTrace) ||
		conf.Get(config.KeyObsHTTPAddr) != ""
	if telemetry {
		c.fabric.SetRegistry(c.counters.Registry())
		c.view = obs.NewClusterView(int(conf.Int(config.KeyObsClusterWindow)))
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("node%d", i)
		dev, err := c.fabric.NewDevice(host)
		if err != nil {
			return nil, err
		}
		store := storage.NewLocalStore()
		if err := c.fs.AddDataNode(hdfs.NewDataNode(host, store)); err != nil {
			return nil, err
		}
		tt := &TaskTracker{
			host: host, store: store, fab: c.fabric, dev: dev,
			conf: conf, counters: c.counters, profile: &c.profile,
			trace: &c.trace,
		}
		var nodeReg *obs.Registry
		if telemetry {
			nodeReg = obs.NewRegistry()
		}
		tt.initNodeTelemetry(nodeReg, c.events)
		c.trackers = append(c.trackers, tt)
		srv, err := engine.StartTracker(tt)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: starting %s on %s: %w", engine.Name(), host, err)
		}
		c.servers = append(c.servers, srv)
	}
	hosts := make([]string, n)
	for i, tt := range c.trackers {
		hosts[i] = tt.Host()
	}
	c.attempts = newAttemptRegistry(n)
	c.liveness = newLivenessMonitor(hosts,
		time.Duration(conf.Int(config.KeyTrackerExpiry))*time.Millisecond,
		time.Now, c.decommission)
	// Telemetry rides the heartbeat path: every beat observes its spacing
	// and processing-time histograms and ships the node's metric delta
	// into the cluster view (nil shipper/view with telemetry off — the
	// beat then costs two nil-histogram checks).
	c.liveness.hbInterval = c.counters.Registry().Histogram("mapred.tasktracker.heartbeat.interval")
	c.liveness.hbRTT = c.counters.Registry().Histogram("mapred.tasktracker.heartbeat.rtt")
	c.liveness.onBeat = func(ti int, host string) {
		c.counters.Add("mapred.tasktracker.heartbeats", 1)
		c.view.Ingest(c.trackers[ti].ShipDelta(time.Now()))
	}
	c.liveness.start()
	if addr := conf.Get(config.KeyObsHTTPAddr); addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: observability endpoint on %s: %w", addr, err)
		}
		c.httpLn = ln
		c.httpSrv = &http.Server{Handler: obs.NewHandler(obs.HandlerSources{
			Registry: c.counters.Registry(),
			Profile:  c.ProfileReport,
			Cluster:  c.ClusterReport,
			Events:   c.events,
			Trace:    c.TraceReport,
		})}
		go func() { _ = c.httpSrv.Serve(ln) }()
	}
	return c, nil
}

// ObsAddr returns the listen address of the debug observability endpoint
// ("" when mapred.obs.http.addr is unset).
func (c *Cluster) ObsAddr() string {
	if c.httpLn == nil {
		return ""
	}
	return c.httpLn.Addr().String()
}

// ProfileReport snapshots the running job's shuffle profile, falling
// back to the last finished job's report; nil when nothing was profiled.
func (c *Cluster) ProfileReport() *obs.Report {
	if p := c.profile.Load(); p != nil {
		return p.Report()
	}
	return c.lastReport.Load()
}

// TraceReport returns the running job's lifecycle trace, falling back
// to the most recent job's; nil when nothing was traced.
func (c *Cluster) TraceReport() *obs.JobTrace {
	if t := c.trace.Load(); t != nil {
		return t
	}
	return c.lastTrace.Load()
}

// ClusterReport snapshots the heartbeat-shipped per-node telemetry
// (nil when the telemetry plane is off).
func (c *Cluster) ClusterReport() *obs.ClusterReport {
	return c.view.Report(time.Now())
}

// ClusterView exposes the raw merged node-telemetry view (nil when the
// telemetry plane is off) — the surface an adaptive scheduler reads.
func (c *Cluster) ClusterView() *obs.ClusterView { return c.view }

// Events returns the scheduler's structured event log.
func (c *Cluster) Events() *obs.EventLog { return c.events }

// Registry returns the obs registry backing the cluster counters.
func (c *Cluster) Registry() *obs.Registry { return c.counters.Registry() }

// FS returns the cluster's HDFS (for loading inputs and reading outputs).
func (c *Cluster) FS() *hdfs.FileSystem { return c.fs }

// Conf returns the cluster configuration.
func (c *Cluster) Conf() *config.Config { return c.conf }

// Engine returns the shuffle engine.
func (c *Cluster) Engine() ShuffleEngine { return c.engine }

// Counters returns the cluster-wide counters.
func (c *Cluster) Counters() *stats.Counters { return c.counters }

// Trackers returns the TaskTrackers (for tests and diagnostics).
func (c *Cluster) Trackers() []*TaskTracker { return c.trackers }

// Servers returns the per-tracker shuffle servers, index-aligned with
// Trackers (for tests and diagnostics).
func (c *Cluster) Servers() []TrackerServer {
	c.smu.RLock()
	defer c.smu.RUnlock()
	return append([]TrackerServer(nil), c.servers...)
}

// server returns tracker ti's current shuffle server (revive replaces
// them, so index once under the lock).
func (c *Cluster) server(ti int) TrackerServer {
	c.smu.RLock()
	defer c.smu.RUnlock()
	return c.servers[ti]
}

func (c *Cluster) trackerIndex(host string) (int, error) {
	for i, tt := range c.trackers {
		if tt.Host() == host {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mapred: no tracker named %q", host)
}

// KillTracker simulates node death for tests and chaos schedules: the
// tracker's process is gone — heartbeats stop, its shuffle server shuts
// down (in-flight responder work errors out), and every task attempt
// running there is cancelled. The scheduler only learns of the death
// when the missing heartbeats exceed mapred.tasktracker.expiry.interval
// and the sweep decommissions the node. Killing the last live tracker
// is refused.
func (c *Cluster) KillTracker(host string) error {
	ti, err := c.trackerIndex(host)
	if err != nil {
		return err
	}
	if err := c.liveness.suppress(ti); err != nil {
		return err
	}
	c.attempts.killAll(ti)
	_ = c.server(ti).Close()
	return nil
}

// ReviveTracker restarts a killed or decommissioned tracker: a fresh
// shuffle server is started for it, heartbeats resume, membership is
// restored, and parked slot workers wake up and take new work.
func (c *Cluster) ReviveTracker(host string) error {
	ti, err := c.trackerIndex(host)
	if err != nil {
		return err
	}
	if c.liveness.isUp(ti) {
		return nil
	}
	srv, err := c.engine.StartTracker(c.trackers[ti])
	if err != nil {
		return fmt.Errorf("mapred: reviving %s: %w", host, err)
	}
	c.smu.Lock()
	c.servers[ti] = srv
	c.smu.Unlock()
	c.liveness.revive(ti)
	c.counters.Add("mapred.tasktracker.revived", 1)
	c.events.Append(obs.Event{Type: obs.EvTrackerRevived, Host: host})
	return nil
}

// decommission is the liveness monitor's expiry hook: the scheduler has
// declared tracker ti dead. Its running attempts are cancelled, its
// responder is fenced off, and the per-job watcher (registered by
// execute) reschedules its work and re-hosts its completed map outputs.
func (c *Cluster) decommission(ti int, host string) {
	c.counters.Add("mapred.tasktracker.expired", 1)
	c.events.Append(obs.Event{Type: obs.EvHeartbeatExpired, Host: host,
		Cause: fmt.Sprintf("no heartbeat within %v", c.liveness.expiry)})
	c.counters.Add("mapred.tasktracker.decommissioned", 1)
	c.events.Append(obs.Event{Type: obs.EvTrackerDecommissioned, Host: host,
		Cause: "declared dead by liveness sweep"})
	c.view.MarkStale(host)
	c.attempts.killAll(ti)
	_ = c.server(ti).Close()
}

// Close shuts down the liveness monitor and the shuffle servers.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.liveness != nil {
		c.liveness.stopAll()
	}
	if c.httpSrv != nil {
		_ = c.httpSrv.Close()
	}
	for _, s := range c.Servers() {
		_ = s.Close()
	}
}

// JobResult summarizes a completed job.
type JobResult struct {
	JobID       string
	Duration    time.Duration
	NumMaps     int
	NumReduces  int
	OutputFiles []string
	// Counters holds the per-job delta of cluster counters.
	Counters map[string]int64
	// Phases holds the per-job delta of accumulated task-phase wall time
	// (map.task, reduce.shuffle, reduce.apply) summed across tasks.
	Phases map[string]time.Duration
	// Profile is the shuffle observability report, non-nil only when the
	// job ran with mapred.obs.profile.enabled.
	Profile *obs.Report
	// Trace is the job lifecycle trace (dispatch → map → shuffle →
	// merge → reduce spans, exportable as Chrome trace-event JSON via
	// Trace.ChromeTrace()), non-nil only with mapred.obs.trace.enabled.
	Trace *obs.JobTrace
}

// split is one map task's input: one block of a splittable file or a
// whole non-splittable file.
type split struct {
	id     int
	path   string
	blocks []hdfs.BlockLocation
	hosts  []string // candidate local hosts
}

func (c *Cluster) planSplits(job *Job) ([]*split, error) {
	var splits []*split
	for _, path := range job.Input {
		info, err := c.fs.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("mapred: input %s: %w", path, err)
		}
		if job.InputFormat.Splittable(c.fs.BlockSize()) {
			for _, bl := range info.Blocks {
				splits = append(splits, &split{
					id: len(splits), path: path,
					blocks: []hdfs.BlockLocation{bl}, hosts: bl.Hosts,
				})
			}
		} else {
			sp := &split{id: len(splits), path: path, blocks: info.Blocks}
			if len(info.Blocks) > 0 {
				sp.hosts = info.Blocks[0].Hosts
			}
			splits = append(splits, sp)
		}
	}
	if len(splits) == 0 {
		return nil, errors.New("mapred: no input splits")
	}
	return splits, nil
}

// RunJob executes a job to completion, returning its result.
func (c *Cluster) RunJob(ctx context.Context, spec *Job) (*JobResult, error) {
	job, err := spec.withDefaults(c.conf)
	if err != nil {
		return nil, err
	}
	if err := job.Conf.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("mapred: cluster closed")
	}
	if c.jobIDs[job.Name] {
		c.mu.Unlock()
		return nil, fmt.Errorf("mapred: job name %q already used", job.Name)
	}
	c.jobIDs[job.Name] = true
	c.jobSeq++
	jobID := fmt.Sprintf("job_%04d_%s", c.jobSeq, job.Name)
	c.mu.Unlock()

	if existing := c.fs.List(job.Output + "/"); len(existing) > 0 {
		return nil, fmt.Errorf("mapred: output directory %s not empty", job.Output)
	}

	splits, err := c.planSplits(job)
	if err != nil {
		return nil, err
	}
	numReduces := job.NumReduces
	if numReduces == 0 {
		numReduces = len(c.trackers) * int(job.Conf.Int(config.KeyReduceSlots))
	}
	info := JobInfo{
		ID: jobID, Conf: job.Conf, Comparator: job.Comparator,
		NumMaps: len(splits), NumReduces: numReduces,
	}

	// Install the job's shuffle profile (nil when disabled — the nil is
	// what every instrumentation site fast-paths on). Concurrent RunJobs
	// share the slot; the profile follows the most recently started job.
	// Tracing needs the profile's fetch spans, so enabling the trace
	// forces a profile even when profiling itself is off — the report is
	// then simply not attached to the result.
	profileOn := job.Conf.Bool(config.KeyObsProfile)
	traceOn := job.Conf.Bool(config.KeyObsTrace)
	var prof *obs.JobProfile
	if profileOn || traceOn {
		prof = obs.NewJobProfile(jobID)
	}
	c.profile.Store(prof)
	var tr *obs.JobTrace
	if traceOn {
		tr = obs.NewJobTrace(jobID)
	}
	c.trace.Store(tr)

	before := c.counters.Snapshot()
	phasesBefore := c.phases.Snapshot()
	eventsBefore := c.events.Seq()
	start := time.Now()
	if err := c.execute(ctx, info, job, splits); err != nil {
		c.profile.Store(nil)
		c.trace.Store(nil)
		if tr != nil {
			// A failed job's trace is the one most worth reading.
			c.lastTrace.Store(tr)
		}
		// Attach the scheduler events that fired during the job — the
		// expiry/re-host/retry story behind the failure.
		if evs := c.events.TailSince(eventsBefore, 32); len(evs) > 0 {
			err = fmt.Errorf("%w\nscheduler events during job:\n%s", err, obs.FormatEvents(evs))
		}
		// A failed or cancelled job must not leave partial output: the
		// directory was empty at admission, so everything under it —
		// committed parts from finished reduces, uncommitted attempt
		// temp files, abandoned writer placeholders — is ours to remove.
		for _, p := range c.fs.List(job.Output + "/") {
			_ = c.fs.Delete(p)
		}
		for i, tt := range c.trackers {
			c.server(i).JobComplete(info)
			tt.CleanupJob(jobID)
		}
		return nil, err
	}
	dur := time.Since(start)

	// Commit-protocol debris: losing duplicate attempts delete their own
	// temp files, but attempts killed mid-write leave reserved names
	// under _temporary; clear the scratch dir before listing the output.
	for _, p := range c.fs.List(job.Output + "/_temporary/") {
		_ = c.fs.Delete(p)
	}
	for i, tt := range c.trackers {
		c.server(i).JobComplete(info)
		tt.CleanupJob(jobID)
	}
	after := c.counters.Snapshot()
	delta := make(map[string]int64, len(after))
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			delta[k] = d
		}
	}
	phasesAfter := c.phases.Snapshot()
	phaseDelta := make(map[string]time.Duration, len(phasesAfter))
	for k, v := range phasesAfter {
		if d := v - phasesBefore[k]; d != 0 {
			phaseDelta[k] = d
		}
	}
	res := &JobResult{
		JobID: jobID, Duration: dur,
		NumMaps: len(splits), NumReduces: numReduces,
		OutputFiles: c.fs.List(job.Output + "/"),
		Counters:    delta,
		Phases:      phaseDelta,
	}
	if prof != nil {
		if profileOn {
			rep := prof.Report()
			res.Profile = rep
			c.lastReport.Store(rep)
		}
		c.profile.Store(nil)
	}
	if tr != nil {
		res.Trace = tr
		c.lastTrace.Store(tr)
		c.trace.Store(nil)
	}
	return res, nil
}

// execute runs the map and reduce phases concurrently (reduces start
// immediately and their fetchers wait on map-completion events).
//
// Both phases schedule through attemptQueues: slot workers on every
// tracker pull attempts, a failed attempt is retried up to
// mapred.{map,reduce}.max.attempts times, an attempt that dies with its
// node is requeued without consuming budget, and speculation launches
// one backup per straggler with first-finisher-wins arbitration (the
// split queue's old contract for maps, the output-commit rename for
// reduces). Workers on a dead tracker park until revive, job end, or
// cancellation; a decommissioned tracker's completed map outputs are
// proactively re-executed elsewhere and in-flight fetchers learn of the
// loss through the TrackerLossFeed.
func (c *Cluster) execute(ctx context.Context, info JobInfo, job *Job, splits []*split) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	board := newEventBoard(info.NumMaps)
	defer board.abort()
	losses := NewTrackerLossFeed()
	recovery := newJobRecovery(ctx, c, info, job, splits)

	// React to decommissions for the duration of this job: tell
	// in-flight reducers the host is gone (they fast-fail its
	// connections) and re-execute its completed map outputs elsewhere so
	// fetchers that escalate find the replacement already running. The
	// re-executions run outside the worker WaitGroup — they are bounded
	// by ctx and touch only job-scoped state.
	unwatch := c.liveness.watch(func(ti int, host string) {
		losses.Announce(host)
		for _, mapID := range board.servedBy(host) {
			go func(mapID int) {
				if newHost, err := recovery.RecoverAway(ctx, mapID, host); err == nil {
					board.relocate(mapID, newHost)
					c.events.Append(obs.Event{Type: obs.EvOutputRehosted,
						Job: info.ID, Task: fmt.Sprintf("m%d", mapID), Host: newHost,
						Cause: "map output lost with " + host})
				}
			}(mapID)
		}
	})
	defer unwatch()

	var wg sync.WaitGroup

	// runWorkers starts slots workers per tracker pulling attempts from
	// q. Workers on a down tracker park until it changes state; they
	// exit when the queue drains, the phase is aborted, or ctx ends.
	// The slot index names the trace lane ("map slot 2" on a node is one
	// tid in the Chrome export), so each worker's attempts line up on one
	// timeline row.
	runWorkers := func(q *attemptQueue, slots int, run func(ti int, tt *TaskTracker, slot, id, attempt int, backup bool)) {
		for ti, tt := range c.trackers {
			for s := 0; s < slots; s++ {
				wg.Add(1)
				go func(ti int, tt *TaskTracker, slot int) {
					defer wg.Done()
					for {
						if ctx.Err() != nil || q.finished() {
							return
						}
						if up, changed := c.liveness.status(ti); !up {
							select {
							case <-changed:
							case <-q.doneCh:
								return
							case <-ctx.Done():
								return
							}
							continue
						}
						id, attempt, backup, ok, wait := q.take(tt.Host())
						if !ok {
							if wait == nil {
								return
							}
							select {
							case <-wait:
							case <-ctx.Done():
								return
							}
							continue
						}
						run(ti, tt, slot, id, attempt, backup)
					}
				}(ti, tt, s)
			}
		}
	}

	// Map phase. With mapred.map.tasks.speculative.execution, idle
	// workers launch backup attempts for stragglers; the first completion
	// wins and later duplicates are discarded.
	splitByID := make(map[int]*split, len(splits))
	mapIDs := make([]int, 0, len(splits))
	hostHints := make(map[int][]string, len(splits))
	for _, sp := range splits {
		splitByID[sp.id] = sp
		mapIDs = append(mapIDs, sp.id)
		hostHints[sp.id] = sp.hosts
	}
	mq := newAttemptQueue(mapIDs, hostHints,
		int(info.Conf.Int(config.KeyMapMaxAttempts)),
		info.Conf.Bool(config.KeySpeculativeMaps))
	runWorkers(mq, int(info.Conf.Int(config.KeyMapSlots)),
		func(ti int, tt *TaskTracker, slot, id, attempt int, backup bool) {
			task := fmt.Sprintf("m%d", id)
			if backup {
				c.counters.Add("map.tasks.speculative", 1)
				c.events.Append(obs.Event{Type: obs.EvSpeculationLaunched,
					Job: info.ID, Task: task, Host: tt.Host(), Cause: "straggler backup"})
			}
			tr := tt.Trace()
			var lane string
			var dispatched time.Time
			if tr != nil {
				lane = fmt.Sprintf("map slot %d", slot)
				dispatched = time.Now()
			}
			actx, h := c.attempts.begin(ctx, ti)
			err := c.runMapTask(actx, tt, info, job, splitByID[id], lane, attempt)
			killed := h.finish()
			if tr != nil {
				tr.Span(tt.Host(), lane, obs.CatSched,
					fmt.Sprintf("dispatch m%d@%d", id, attempt), dispatched, time.Now(),
					map[string]string{"corr": fmt.Sprintf("%s/m%d@%d", info.ID, id, attempt)})
			}
			if err == nil && killed {
				// Ran to completion on a node the scheduler killed
				// mid-attempt: its server is gone, so the output cannot
				// be served. Discard and reschedule.
				err = fmt.Errorf("mapred: map %d attempt %d: %s died mid-attempt", id, attempt, tt.Host())
			}
			if err == nil {
				if !mq.complete(id) {
					c.counters.Add("map.tasks.duplicate.discarded", 1)
					c.events.Append(obs.Event{Type: obs.EvSpeculationLost,
						Job: info.ID, Task: task, Host: tt.Host(), Cause: "another attempt finished first"})
					return
				}
				if backup {
					c.events.Append(obs.Event{Type: obs.EvSpeculationWon,
						Job: info.ID, Task: task, Host: tt.Host()})
				}
				c.server(ti).MapOutputReady(info, id)
				board.announce(MapEvent{MapID: id, Host: tt.Host()})
				return
			}
			if ctx.Err() != nil && !killed {
				return // job is aborting, not this attempt's fault
			}
			c.counters.Add("map.task.attempts.failed", 1)
			if killed {
				if mq.requeueKilled(id, backup) {
					c.counters.Add("map.task.attempts.retried", 1)
					c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
						Job: info.ID, Task: task, Host: tt.Host(), Cause: "node death"})
				}
				return
			}
			if backup {
				// A failed backup is harmless; the original attempt is
				// still running.
				return
			}
			requeued, fatal := mq.fail(id)
			if requeued {
				c.counters.Add("map.task.attempts.retried", 1)
				c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
					Job: info.ID, Task: task, Host: tt.Host(), Cause: err.Error()})
			}
			if fatal {
				c.events.Append(obs.Event{Type: obs.EvAttemptExhausted,
					Job: info.ID, Task: task, Host: tt.Host(),
					Cause: fmt.Sprintf("failed after %d attempts: %v", mq.attempts(id), err)})
				fail(fmt.Errorf("map %d on %s failed after %d attempts: %w",
					id, tt.Host(), mq.attempts(id), err))
			}
		})

	// Reduce phase: no locality hints — any tracker's reduce slots may
	// take any partition, so losing a node just shifts its partitions to
	// the survivors. Duplicate attempts (speculation) are arbitrated by
	// the output-commit rename: the loser's commit fails cleanly.
	reduceIDs := make([]int, info.NumReduces)
	for r := range reduceIDs {
		reduceIDs[r] = r
	}
	rq := newAttemptQueue(reduceIDs, nil,
		int(info.Conf.Int(config.KeyReduceMaxAttempts)),
		info.Conf.Bool(config.KeySpeculativeReduces))
	runWorkers(rq, int(info.Conf.Int(config.KeyReduceSlots)),
		func(ti int, tt *TaskTracker, slot, id, attempt int, backup bool) {
			task := fmt.Sprintf("r%d", id)
			if backup {
				c.counters.Add("reduce.tasks.speculative", 1)
				c.events.Append(obs.Event{Type: obs.EvSpeculationLaunched,
					Job: info.ID, Task: task, Host: tt.Host(), Cause: "straggler backup"})
			}
			tr := tt.Trace()
			var lane string
			var dispatched time.Time
			if tr != nil {
				lane = fmt.Sprintf("reduce slot %d", slot)
				dispatched = time.Now()
			}
			events, unsubscribe := board.subscribe()
			actx, h := c.attempts.begin(ctx, ti)
			committed, err := c.runReduceTask(actx, tt, info, job, id, attempt, events, recovery, losses, lane)
			killed := h.finish()
			unsubscribe()
			if tr != nil {
				tr.Span(tt.Host(), lane, obs.CatSched,
					fmt.Sprintf("dispatch r%d@%d", id, attempt), dispatched, time.Now(),
					map[string]string{"corr": fmt.Sprintf("%s/r%d@%d", info.ID, id, attempt)})
			}
			if err == nil {
				if committed {
					rq.complete(id)
					if backup {
						c.events.Append(obs.Event{Type: obs.EvSpeculationWon,
							Job: info.ID, Task: task, Host: tt.Host()})
					}
				} else {
					// Another attempt committed first; ours was
					// discarded by the rename arbiter.
					rq.complete(id)
					c.counters.Add("reduce.tasks.duplicate.discarded", 1)
					c.events.Append(obs.Event{Type: obs.EvSpeculationLost,
						Job: info.ID, Task: task, Host: tt.Host(), Cause: "another attempt committed first"})
				}
				return
			}
			if ctx.Err() != nil && !killed {
				return
			}
			c.counters.Add("reduce.task.attempts.failed", 1)
			if killed {
				if rq.requeueKilled(id, backup) {
					c.counters.Add("reduce.task.attempts.retried", 1)
					c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
						Job: info.ID, Task: task, Host: tt.Host(), Cause: "node death"})
				}
				return
			}
			if backup {
				return
			}
			requeued, fatal := rq.fail(id)
			if requeued {
				c.counters.Add("reduce.task.attempts.retried", 1)
				c.events.Append(obs.Event{Type: obs.EvAttemptRetried,
					Job: info.ID, Task: task, Host: tt.Host(), Cause: err.Error()})
			}
			if fatal {
				c.events.Append(obs.Event{Type: obs.EvAttemptExhausted,
					Job: info.ID, Task: task, Host: tt.Host(),
					Cause: fmt.Sprintf("failed after %d attempts: %v", rq.attempts(id), err)})
				fail(fmt.Errorf("reduce %d on %s failed after %d attempts: %w",
					id, tt.Host(), rq.attempts(id), err))
			}
		})

	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
