package mapred

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdmamr/internal/config"
	"rdmamr/internal/hdfs"
	"rdmamr/internal/obs"
	"rdmamr/internal/stats"
	"rdmamr/internal/storage"
	"rdmamr/internal/ucr"
)

// Cluster is a functional MapReduce cluster: an HDFS instance whose
// DataNodes share local disks with the TaskTrackers (as on real slave
// nodes), one verbs device per node on a shared UCR fabric, and a shuffle
// engine started on every tracker.
type Cluster struct {
	fs       *hdfs.FileSystem
	conf     *config.Config
	engine   ShuffleEngine
	fabric   *ucr.Fabric
	trackers []*TaskTracker
	servers  []TrackerServer
	counters *stats.Counters
	phases   *stats.Phases

	// profile is the running job's shuffle profile (nil when profiling
	// is off); lastReport keeps the most recent finished job's report so
	// the debug endpoint can serve it between jobs. Both are atomic —
	// trackers and the HTTP handler read them concurrently with RunJob.
	profile    atomic.Pointer[obs.JobProfile]
	lastReport atomic.Pointer[obs.Report]
	httpLn     net.Listener
	httpSrv    *http.Server

	mu     sync.Mutex
	jobSeq int
	jobIDs map[string]bool
	closed bool
}

// NewCluster builds a cluster of n nodes named node0..node{n-1} running
// the given shuffle engine. conf may be nil for defaults.
func NewCluster(n int, conf *config.Config, engine ShuffleEngine) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mapred: cluster size %d", n)
	}
	if engine == nil {
		return nil, errors.New("mapred: cluster needs a shuffle engine")
	}
	if conf == nil {
		conf = config.New()
	}
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		fs:       hdfs.New(conf.Int(config.KeyBlockSize), int(conf.Int(config.KeyReplication))),
		conf:     conf,
		engine:   engine,
		fabric:   ucr.NewFabric(),
		counters: &stats.Counters{},
		phases:   &stats.Phases{},
		jobIDs:   make(map[string]bool),
	}
	// Attach the fabric to the registry only when someone will look at
	// the numbers — profiling or the debug endpoint. Detached (default),
	// the ucr/verbs data path stays clock-free.
	if conf.Bool(config.KeyObsProfile) || conf.Get(config.KeyObsHTTPAddr) != "" {
		c.fabric.SetRegistry(c.counters.Registry())
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("node%d", i)
		dev, err := c.fabric.NewDevice(host)
		if err != nil {
			return nil, err
		}
		store := storage.NewLocalStore()
		if err := c.fs.AddDataNode(hdfs.NewDataNode(host, store)); err != nil {
			return nil, err
		}
		tt := &TaskTracker{
			host: host, store: store, fab: c.fabric, dev: dev,
			conf: conf, counters: c.counters, profile: &c.profile,
		}
		c.trackers = append(c.trackers, tt)
		srv, err := engine.StartTracker(tt)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: starting %s on %s: %w", engine.Name(), host, err)
		}
		c.servers = append(c.servers, srv)
	}
	if addr := conf.Get(config.KeyObsHTTPAddr); addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("mapred: observability endpoint on %s: %w", addr, err)
		}
		c.httpLn = ln
		c.httpSrv = &http.Server{Handler: obs.Handler(c.counters.Registry(), c.ProfileReport)}
		go func() { _ = c.httpSrv.Serve(ln) }()
	}
	return c, nil
}

// ObsAddr returns the listen address of the debug observability endpoint
// ("" when mapred.obs.http.addr is unset).
func (c *Cluster) ObsAddr() string {
	if c.httpLn == nil {
		return ""
	}
	return c.httpLn.Addr().String()
}

// ProfileReport snapshots the running job's shuffle profile, falling
// back to the last finished job's report; nil when nothing was profiled.
func (c *Cluster) ProfileReport() *obs.Report {
	if p := c.profile.Load(); p != nil {
		return p.Report()
	}
	return c.lastReport.Load()
}

// Registry returns the obs registry backing the cluster counters.
func (c *Cluster) Registry() *obs.Registry { return c.counters.Registry() }

// FS returns the cluster's HDFS (for loading inputs and reading outputs).
func (c *Cluster) FS() *hdfs.FileSystem { return c.fs }

// Conf returns the cluster configuration.
func (c *Cluster) Conf() *config.Config { return c.conf }

// Engine returns the shuffle engine.
func (c *Cluster) Engine() ShuffleEngine { return c.engine }

// Counters returns the cluster-wide counters.
func (c *Cluster) Counters() *stats.Counters { return c.counters }

// Trackers returns the TaskTrackers (for tests and diagnostics).
func (c *Cluster) Trackers() []*TaskTracker { return c.trackers }

// Servers returns the per-tracker shuffle servers, index-aligned with
// Trackers (for tests and diagnostics).
func (c *Cluster) Servers() []TrackerServer { return c.servers }

// Close shuts down the shuffle servers.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.httpSrv != nil {
		_ = c.httpSrv.Close()
	}
	for _, s := range c.servers {
		_ = s.Close()
	}
}

// JobResult summarizes a completed job.
type JobResult struct {
	JobID       string
	Duration    time.Duration
	NumMaps     int
	NumReduces  int
	OutputFiles []string
	// Counters holds the per-job delta of cluster counters.
	Counters map[string]int64
	// Phases holds the per-job delta of accumulated task-phase wall time
	// (map.task, reduce.shuffle, reduce.apply) summed across tasks.
	Phases map[string]time.Duration
	// Profile is the shuffle observability report, non-nil only when the
	// job ran with mapred.obs.profile.enabled.
	Profile *obs.Report
}

// split is one map task's input: one block of a splittable file or a
// whole non-splittable file.
type split struct {
	id     int
	path   string
	blocks []hdfs.BlockLocation
	hosts  []string // candidate local hosts
}

type splitQueue struct {
	mu     sync.Mutex
	splits []*split

	// Straggler speculation state: splits currently running, splits
	// already completed, and splits that have been handed out as a
	// backup already (at most one backup per split).
	inFlight map[int]*split
	done     map[int]bool
	backed   map[int]bool
}

func newSplitQueue(splits []*split) *splitQueue {
	return &splitQueue{
		splits:   append([]*split(nil), splits...),
		inFlight: make(map[int]*split),
		done:     make(map[int]bool),
		backed:   make(map[int]bool),
	}
}

// take pops a split, preferring one with a replica on host (Hadoop's
// data-local scheduling). With speculation enabled, an idle worker that
// finds the queue empty may claim a backup copy of an in-flight split —
// the first attempt to complete wins.
func (q *splitQueue) take(host string, speculate bool) (*split, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, sp := range q.splits {
		for _, h := range sp.hosts {
			if h == host {
				q.splits = append(q.splits[:i], q.splits[i+1:]...)
				q.inFlight[sp.id] = sp
				return sp, false
			}
		}
	}
	if len(q.splits) > 0 {
		sp := q.splits[0]
		q.splits = q.splits[1:]
		q.inFlight[sp.id] = sp
		return sp, false
	}
	if speculate {
		for id, sp := range q.inFlight {
			if !q.done[id] && !q.backed[id] {
				q.backed[id] = true
				return sp, true
			}
		}
	}
	return nil, false
}

// complete records a finished attempt; it returns true for the FIRST
// completion of the split (later attempts are discarded duplicates).
func (q *splitQueue) complete(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done[id] {
		return false
	}
	q.done[id] = true
	delete(q.inFlight, id)
	return true
}

func (c *Cluster) planSplits(job *Job) ([]*split, error) {
	var splits []*split
	for _, path := range job.Input {
		info, err := c.fs.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("mapred: input %s: %w", path, err)
		}
		if job.InputFormat.Splittable(c.fs.BlockSize()) {
			for _, bl := range info.Blocks {
				splits = append(splits, &split{
					id: len(splits), path: path,
					blocks: []hdfs.BlockLocation{bl}, hosts: bl.Hosts,
				})
			}
		} else {
			sp := &split{id: len(splits), path: path, blocks: info.Blocks}
			if len(info.Blocks) > 0 {
				sp.hosts = info.Blocks[0].Hosts
			}
			splits = append(splits, sp)
		}
	}
	if len(splits) == 0 {
		return nil, errors.New("mapred: no input splits")
	}
	return splits, nil
}

// RunJob executes a job to completion, returning its result.
func (c *Cluster) RunJob(ctx context.Context, spec *Job) (*JobResult, error) {
	job, err := spec.withDefaults(c.conf)
	if err != nil {
		return nil, err
	}
	if err := job.Conf.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("mapred: cluster closed")
	}
	if c.jobIDs[job.Name] {
		c.mu.Unlock()
		return nil, fmt.Errorf("mapred: job name %q already used", job.Name)
	}
	c.jobIDs[job.Name] = true
	c.jobSeq++
	jobID := fmt.Sprintf("job_%04d_%s", c.jobSeq, job.Name)
	c.mu.Unlock()

	if existing := c.fs.List(job.Output + "/"); len(existing) > 0 {
		return nil, fmt.Errorf("mapred: output directory %s not empty", job.Output)
	}

	splits, err := c.planSplits(job)
	if err != nil {
		return nil, err
	}
	numReduces := job.NumReduces
	if numReduces == 0 {
		numReduces = len(c.trackers) * int(job.Conf.Int(config.KeyReduceSlots))
	}
	info := JobInfo{
		ID: jobID, Conf: job.Conf, Comparator: job.Comparator,
		NumMaps: len(splits), NumReduces: numReduces,
	}

	// Install the job's shuffle profile (nil when disabled — the nil is
	// what every instrumentation site fast-paths on). Concurrent RunJobs
	// share the slot; the profile follows the most recently started job.
	var prof *obs.JobProfile
	if job.Conf.Bool(config.KeyObsProfile) {
		prof = obs.NewJobProfile(jobID)
	}
	c.profile.Store(prof)

	before := c.counters.Snapshot()
	phasesBefore := c.phases.Snapshot()
	start := time.Now()
	if err := c.execute(ctx, info, job, splits); err != nil {
		c.profile.Store(nil)
		return nil, err
	}
	dur := time.Since(start)

	for i, tt := range c.trackers {
		c.servers[i].JobComplete(info)
		tt.CleanupJob(jobID)
	}
	after := c.counters.Snapshot()
	delta := make(map[string]int64, len(after))
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			delta[k] = d
		}
	}
	phasesAfter := c.phases.Snapshot()
	phaseDelta := make(map[string]time.Duration, len(phasesAfter))
	for k, v := range phasesAfter {
		if d := v - phasesBefore[k]; d != 0 {
			phaseDelta[k] = d
		}
	}
	res := &JobResult{
		JobID: jobID, Duration: dur,
		NumMaps: len(splits), NumReduces: numReduces,
		OutputFiles: c.fs.List(job.Output + "/"),
		Counters:    delta,
		Phases:      phaseDelta,
	}
	if prof != nil {
		rep := prof.Report()
		res.Profile = rep
		c.lastReport.Store(rep)
		c.profile.Store(nil)
	}
	return res, nil
}

// execute runs the map and reduce phases concurrently (reduces start
// immediately and their fetchers wait on map-completion events).
func (c *Cluster) execute(ctx context.Context, info JobInfo, job *Job, splits []*split) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Per-reduce map-completion event channels, buffered so broadcasting
	// never blocks the map path.
	events := make([]chan MapEvent, info.NumReduces)
	for i := range events {
		events[i] = make(chan MapEvent, info.NumMaps+1)
	}
	var (
		mapsLeft     = int64(len(splits))
		mapsMu       sync.Mutex
		eventsClosed bool
	)
	broadcast := func(ev MapEvent) {
		mapsMu.Lock()
		defer mapsMu.Unlock()
		if eventsClosed {
			return
		}
		for _, ch := range events {
			ch <- ev
		}
		mapsLeft--
		if mapsLeft == 0 {
			for _, ch := range events {
				close(ch)
			}
			eventsClosed = true
		}
	}
	// On failure the event channels must still close so reduce fetchers
	// unblock (they also watch ctx; this is belt and braces).
	defer func() {
		mapsMu.Lock()
		if !eventsClosed {
			for _, ch := range events {
				close(ch)
			}
			eventsClosed = true
		}
		mapsMu.Unlock()
	}()

	recovery := newJobRecovery(ctx, c, info, job, splits)

	var wg sync.WaitGroup

	// Map phase: per-tracker slot workers pulling from the locality
	// queue. With mapred.map.tasks.speculative.execution, idle workers
	// launch backup attempts for stragglers; the first completion wins
	// and later duplicates are discarded.
	queue := newSplitQueue(splits)
	speculate := info.Conf.Bool(config.KeySpeculativeMaps)
	mapSlots := int(info.Conf.Int(config.KeyMapSlots))
	for ti, tt := range c.trackers {
		for s := 0; s < mapSlots; s++ {
			wg.Add(1)
			go func(ti int, tt *TaskTracker) {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					sp, backup := queue.take(tt.Host(), speculate)
					if sp == nil {
						return
					}
					if backup {
						c.counters.Add("map.tasks.speculative", 1)
					}
					if err := c.runMapTask(ctx, tt, info, job, sp); err != nil {
						if backup || ctx.Err() != nil {
							// A failed backup is harmless; the original
							// attempt is still running.
							continue
						}
						fail(fmt.Errorf("map %d on %s: %w", sp.id, tt.Host(), err))
						return
					}
					if !queue.complete(sp.id) {
						c.counters.Add("map.tasks.duplicate.discarded", 1)
						continue
					}
					c.servers[ti].MapOutputReady(info, sp.id)
					broadcast(MapEvent{MapID: sp.id, Host: tt.Host()})
				}
			}(ti, tt)
		}
	}

	// Reduce phase: round-robin placement, bounded by reduce slots.
	reduceSlots := int(info.Conf.Int(config.KeyReduceSlots))
	sem := make([]chan struct{}, len(c.trackers))
	for i := range sem {
		sem[i] = make(chan struct{}, reduceSlots)
	}
	for r := 0; r < info.NumReduces; r++ {
		ti := r % len(c.trackers)
		wg.Add(1)
		go func(r, ti int) {
			defer wg.Done()
			select {
			case sem[ti] <- struct{}{}:
				defer func() { <-sem[ti] }()
			case <-ctx.Done():
				return
			}
			if err := c.runReduceTask(ctx, c.trackers[ti], info, job, r, events[r], recovery); err != nil {
				fail(fmt.Errorf("reduce %d on %s: %w", r, c.trackers[ti].Host(), err))
			}
		}(r, ti)
	}

	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
