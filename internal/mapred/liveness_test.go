package mapred

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the liveness monitor deterministically: tests call
// beat/sweep directly and advance time by hand, never starting the
// real ticker goroutines.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type expiryRecorder struct {
	mu    sync.Mutex
	hosts []string
}

func (r *expiryRecorder) record(_ int, host string) {
	r.mu.Lock()
	r.hosts = append(r.hosts, host)
	r.mu.Unlock()
}

func (r *expiryRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.hosts...)
}

func testMonitor(t *testing.T, hosts []string, expiry time.Duration) (*livenessMonitor, *fakeClock, *expiryRecorder) {
	t.Helper()
	clk := newFakeClock()
	rec := &expiryRecorder{}
	return newLivenessMonitor(hosts, expiry, clk.now, rec.record), clk, rec
}

func TestLivenessExpiryDecommissionsSilentTracker(t *testing.T) {
	lv, clk, rec := testMonitor(t, []string{"node0", "node1", "node2"}, 100*time.Millisecond)

	// Everyone beats, clock moves, nobody expires.
	clk.advance(60 * time.Millisecond)
	for ti := range lv.states {
		lv.beat(ti)
	}
	clk.advance(60 * time.Millisecond)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("no tracker should expire while within the window, got %v", got)
	}

	// node1 goes silent; the others keep beating past the expiry window.
	for i := 0; i < 3; i++ {
		clk.advance(60 * time.Millisecond)
		lv.beat(0)
		lv.beat(2)
	}
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 || got[0] != "node1" {
		t.Fatalf("expected exactly node1 to expire, got %v", got)
	}
	if lv.isUp(1) {
		t.Fatal("expired tracker should not be up")
	}
	if !lv.isUp(0) || !lv.isUp(2) {
		t.Fatal("beating trackers must stay up")
	}

	// Expiry is edge-triggered: a second sweep must not re-fire.
	clk.advance(time.Second)
	lv.beat(0)
	lv.beat(2)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 {
		t.Fatalf("decommission must fire once per death, got %v", got)
	}
}

func TestLivenessSuppressStopsHeartbeats(t *testing.T) {
	lv, clk, rec := testMonitor(t, []string{"node0", "node1"}, 50*time.Millisecond)

	if err := lv.suppress(0); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	if lv.isUp(0) {
		t.Fatal("suppressed tracker must be down immediately")
	}
	// A killed process can't beat: beats on a suppressed tracker are
	// dropped, so the scheduler notices at the next expired sweep.
	clk.advance(200 * time.Millisecond)
	lv.beat(0)
	lv.beat(1)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 || got[0] != "node0" {
		t.Fatalf("scheduler should detect the kill at sweep time, got %v", got)
	}
}

func TestLivenessSuppressRefusesLastTracker(t *testing.T) {
	lv, _, _ := testMonitor(t, []string{"node0", "node1"}, time.Second)

	if err := lv.suppress(1); err != nil {
		t.Fatalf("first kill should succeed: %v", err)
	}
	err := lv.suppress(0)
	if err == nil {
		t.Fatal("killing the last live tracker must be refused")
	}
	if !strings.Contains(err.Error(), "node0") || !strings.Contains(err.Error(), "last live tracker") {
		t.Fatalf("refusal should name the tracker and reason, got %v", err)
	}
	if !lv.isUp(0) {
		t.Fatal("refused kill must leave the tracker up")
	}
	// Suppressing an already-down tracker is a no-op, not a refusal.
	if err := lv.suppress(1); err != nil {
		t.Fatalf("re-suppressing a dead tracker should be a no-op: %v", err)
	}
}

func TestLivenessReviveRestoresMembership(t *testing.T) {
	lv, clk, rec := testMonitor(t, []string{"node0", "node1"}, 50*time.Millisecond)

	if err := lv.suppress(0); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	lv.beat(1)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 {
		t.Fatalf("expected node0 decommissioned, got %v", got)
	}

	lv.revive(0)
	if !lv.isUp(0) {
		t.Fatal("revived tracker must be up")
	}
	// The revive reset lastBeat, so the next sweep must not re-expire it.
	clk.advance(20 * time.Millisecond)
	lv.beat(0)
	lv.beat(1)
	clk.advance(20 * time.Millisecond)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 {
		t.Fatalf("revived beating tracker must not re-expire, got %v", got)
	}
}

func TestLivenessFalsePositiveExpiryRecovers(t *testing.T) {
	lv, clk, rec := testMonitor(t, []string{"node0", "node1"}, 100*time.Millisecond)
	var recovered []string
	lv.onRecover = func(ti int, host string) {
		recovered = append(recovered, host)
		lv.revive(ti) // what the cluster hook does (via ReviveTracker)
	}

	// node1's beat goroutine stalls past the window (nobody killed it):
	// the sweep decommissions it like any other silent member.
	clk.advance(200 * time.Millisecond)
	lv.beat(0)
	lv.sweep()
	if got := rec.snapshot(); len(got) != 1 || got[0] != "node1" {
		t.Fatalf("expected node1 decommissioned, got %v", got)
	}
	if lv.isUp(1) {
		t.Fatal("decommissioned tracker must be down until its beats resume")
	}

	// Its process was alive all along: the next beat proves it, and the
	// next sweep re-admits it through onRecover.
	clk.advance(10 * time.Millisecond)
	lv.beat(1)
	lv.sweep()
	if len(recovered) != 1 || recovered[0] != "node1" {
		t.Fatalf("onRecover = %v, want [node1]", recovered)
	}
	if !lv.isUp(1) {
		t.Fatal("recovered tracker must be up")
	}
	// Recovery is edge-triggered: a further beating sweep must not re-fire.
	clk.advance(10 * time.Millisecond)
	lv.beat(0)
	lv.beat(1)
	lv.sweep()
	if len(recovered) != 1 {
		t.Fatalf("onRecover must fire once per false positive, got %v", recovered)
	}

	// A KILLED tracker's beats are dropped, so it can never ghost back:
	// suppress, expire, then call beat anyway (as a bug would).
	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	lv.beat(0)
	lv.beat(1)
	lv.sweep()
	clk.advance(10 * time.Millisecond)
	lv.beat(1)
	lv.sweep()
	if len(recovered) != 1 {
		t.Fatalf("killed tracker must not auto-recover, got %v", recovered)
	}
	if lv.isUp(1) {
		t.Fatal("killed tracker must stay down")
	}
}

func TestLivenessStatusChangeChannelClosesOnTransition(t *testing.T) {
	lv, _, _ := testMonitor(t, []string{"node0", "node1"}, time.Second)

	up, changed := lv.status(0)
	if !up {
		t.Fatal("fresh tracker should be up")
	}
	select {
	case <-changed:
		t.Fatal("change channel must stay open until a transition")
	default:
	}
	if err := lv.suppress(0); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	select {
	case <-changed:
	default:
		t.Fatal("suppress must close the pre-transition change channel")
	}
	// The replacement channel closes on the next transition (revive).
	_, changed2 := lv.status(0)
	lv.revive(0)
	select {
	case <-changed2:
	default:
		t.Fatal("revive must close the change channel again")
	}
}

func TestLivenessPickUpScansAndAvoids(t *testing.T) {
	lv, _, _ := testMonitor(t, []string{"node0", "node1", "node2", "node3"}, time.Second)

	if ti, ok := lv.pickUp(2, ""); !ok || ti != 2 {
		t.Fatalf("all up: pickUp(2) = %d,%v, want 2,true", ti, ok)
	}
	if err := lv.suppress(2); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	// Scan wraps past the dead tracker.
	if ti, ok := lv.pickUp(2, ""); !ok || ti != 3 {
		t.Fatalf("pickUp(2) with node2 down = %d,%v, want 3,true", ti, ok)
	}
	// avoid skips a live host when an alternative exists...
	if ti, ok := lv.pickUp(3, "node3"); !ok || ti != 0 {
		t.Fatalf("pickUp(3, avoid node3) = %d,%v, want 0,true", ti, ok)
	}
	// ...but falls back to it when it is the only live choice.
	if err := lv.suppress(0); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	if ti, ok := lv.pickUp(0, "node3"); !ok || ti != 3 {
		t.Fatalf("pickUp with only the avoided host up = %d,%v, want 3,true", ti, ok)
	}
}

func TestLivenessWatcherFiresOnceAndUnregisters(t *testing.T) {
	lv, clk, _ := testMonitor(t, []string{"node0", "node1"}, 50*time.Millisecond)

	var calls []string
	unwatch := lv.watch(func(_ int, host string) { calls = append(calls, host) })

	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	lv.beat(0)
	lv.sweep()
	if len(calls) != 1 || calls[0] != "node1" {
		t.Fatalf("watcher should see node1's decommission, got %v", calls)
	}

	unwatch()
	lv.revive(1)
	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	clk.advance(200 * time.Millisecond)
	lv.beat(0)
	lv.sweep()
	if len(calls) != 1 {
		t.Fatalf("unregistered watcher must not fire, got %v", calls)
	}
}

func TestLivenessStartDetectsDeadTrackerWithRealClock(t *testing.T) {
	// End-to-end through the real goroutines: a short expiry window and
	// a suppressed tracker should produce a decommission without any
	// manual beat/sweep calls.
	clk := time.Now
	rec := &expiryRecorder{}
	lv := newLivenessMonitor([]string{"node0", "node1"}, 20*time.Millisecond, clk, rec.record)
	lv.start()
	defer lv.stopAll()

	if err := lv.suppress(1); err != nil {
		t.Fatalf("suppress: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := rec.snapshot(); len(got) == 1 && got[0] == "node1" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("heartbeat loop never decommissioned the killed tracker: %v", rec.snapshot())
}

func TestAttemptRegistryKillCancelsOnlyThatTracker(t *testing.T) {
	reg := newAttemptRegistry(2)

	ctx0a, h0a := reg.begin(context.Background(), 0)
	ctx0b, h0b := reg.begin(context.Background(), 0)
	ctx1, h1 := reg.begin(context.Background(), 1)

	reg.killAll(0)
	if ctx0a.Err() == nil || ctx0b.Err() == nil {
		t.Fatal("killAll must cancel every attempt on the dead tracker")
	}
	if ctx1.Err() != nil {
		t.Fatal("attempts on other trackers must keep running")
	}
	if !h0a.finish() || !h0b.finish() {
		t.Fatal("killed attempts must report killed=true at finish")
	}
	if h1.finish() {
		t.Fatal("surviving attempt must report killed=false")
	}

	// finish unregisters: a later killAll must not observe old handles.
	reg.killAll(0)
	ctx0c, h0c := reg.begin(context.Background(), 0)
	if ctx0c.Err() != nil {
		t.Fatal("new attempt after killAll must start uncancelled")
	}
	if h0c.finish() {
		t.Fatal("fresh attempt must not inherit a kill")
	}
}

func TestTrackerLossFeedReplayAndLive(t *testing.T) {
	f := NewTrackerLossFeed()
	f.Announce("node2")

	ch, unsub := f.Subscribe()
	defer unsub()
	// Replay of announcements made before subscribing.
	select {
	case h := <-ch:
		if h != "node2" {
			t.Fatalf("replayed host = %q, want node2", h)
		}
	default:
		t.Fatal("subscriber must see pre-subscription losses")
	}
	// Live announcements flow through.
	f.Announce("node0")
	select {
	case h := <-ch:
		if h != "node0" {
			t.Fatalf("live host = %q, want node0", h)
		}
	default:
		t.Fatal("subscriber must see live losses")
	}

	if got := f.Lost(); len(got) != 2 || got[0] != "node2" || got[1] != "node0" {
		t.Fatalf("Lost() = %v, want [node2 node0]", got)
	}

	// After unsubscribe the feed stops delivering (and doesn't panic).
	unsub()
	f.Announce("node1")
	select {
	case h, ok := <-ch:
		if ok {
			t.Fatalf("unsubscribed channel received %q", h)
		}
	default:
	}
}

func TestTrackerLossFeedRetractStopsReplay(t *testing.T) {
	f := NewTrackerLossFeed()
	f.Announce("node1")
	f.Announce("node2")
	f.Retract("node1") // node1 revived: stale news must not replay

	ch, unsub := f.Subscribe()
	defer unsub()
	select {
	case h := <-ch:
		if h != "node2" {
			t.Fatalf("replayed host = %q, want node2 only", h)
		}
	default:
		t.Fatal("still-lost host must replay")
	}
	select {
	case h := <-ch:
		t.Fatalf("retracted host %q must not replay", h)
	default:
	}
	if got := f.Lost(); len(got) != 1 || got[0] != "node2" {
		t.Fatalf("Lost() = %v, want [node2]", got)
	}
	// Retracting on a nil feed or for an unknown host is a no-op.
	var nilFeed *TrackerLossFeed
	nilFeed.Retract("node0")
	f.Retract("node9")
}

func TestTrackerLossFeedNilSafe(t *testing.T) {
	var f *TrackerLossFeed
	f.Announce("node0")
	if got := f.Lost(); got != nil {
		t.Fatalf("nil feed Lost() = %v, want nil", got)
	}
	ch, unsub := f.Subscribe()
	if ch != nil {
		t.Fatal("nil feed must return a nil subscription channel")
	}
	unsub()
}
