// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§IV). Each BenchmarkFigNN target
// reruns the corresponding experiment through the performance simulator
// and reports the series the figure plots (virtual job seconds per
// configuration, as benchmark metrics). BenchmarkFunctionalEngines and
// the ablation/micro benchmarks exercise the functional plane on real
// data. See EXPERIMENTS.md for the paper-vs-measured record.
package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"rdmamr/internal/config"
	"rdmamr/internal/core"
	"rdmamr/internal/fabric"
	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/shuffle/hadoopa"
	"rdmamr/internal/shuffle/httpshuffle"
	"rdmamr/internal/sim"
	"rdmamr/internal/storage"
	"rdmamr/internal/ucr"
	"rdmamr/internal/verbs"
	"rdmamr/internal/workload"
)

// benchFigure runs one figure's simulations and reports every series
// point as a metric "<label>@<tick>" in virtual seconds.
func benchFigure(b *testing.B, gen func() sim.Figure) {
	b.Helper()
	var f sim.Figure
	for i := 0; i < b.N; i++ {
		f = gen()
	}
	for _, s := range f.Series {
		for i, v := range s.Seconds {
			name := sanitizeMetric(s.Label + "@" + f.XTicks[i])
			b.ReportMetric(v, name)
		}
	}
}

func sanitizeMetric(s string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-")
	return r.Replace(s) + "_vsec"
}

// BenchmarkFig4aTeraSort4Node regenerates Figure 4(a): TeraSort on 4
// nodes, 20–40 GB, every interconnect with 1 and 2 HDDs.
func BenchmarkFig4aTeraSort4Node(b *testing.B) { benchFigure(b, sim.Fig4a) }

// BenchmarkFig4bTeraSort8Node regenerates Figure 4(b): TeraSort on 8
// nodes, 60–100 GB.
func BenchmarkFig4bTeraSort8Node(b *testing.B) { benchFigure(b, sim.Fig4b) }

// BenchmarkFig5TeraSortLarge regenerates Figure 5: TeraSort at
// 100 GB/12 nodes and 200 GB/24 nodes on storage nodes.
func BenchmarkFig5TeraSortLarge(b *testing.B) { benchFigure(b, sim.Fig5) }

// BenchmarkFig6aSort4Node regenerates Figure 6(a): Sort on 4 nodes.
func BenchmarkFig6aSort4Node(b *testing.B) { benchFigure(b, sim.Fig6a) }

// BenchmarkFig6bSort8Node regenerates Figure 6(b): Sort on 8 nodes.
func BenchmarkFig6bSort8Node(b *testing.B) { benchFigure(b, sim.Fig6b) }

// BenchmarkFig7SortSSD regenerates Figure 7: Sort on SSD data stores.
func BenchmarkFig7SortSSD(b *testing.B) { benchFigure(b, sim.Fig7) }

// BenchmarkFig8CachingEffect regenerates Figure 8: the
// mapred.local.caching.enabled ablation.
func BenchmarkFig8CachingEffect(b *testing.B) { benchFigure(b, sim.Fig8) }

// --- Functional-plane benchmarks (real data movement) ---

func functionalConf() *config.Config {
	c := config.New()
	c.SetInt(config.KeyBlockSize, 64<<10)
	c.SetInt(config.KeyMapSlots, 2)
	c.SetInt(config.KeyReduceSlots, 2)
	c.SetInt(config.KeyRDMAPacketBytes, 8192)
	c.SetInt(config.KeyKVPairsPerPacket, 64)
	return c
}

func runFunctionalTeraSort(b *testing.B, engine mapred.ShuffleEngine, conf *config.Config, rows int64, tag string) {
	b.Helper()
	runFunctionalTeraSortWith(b, engine, conf, rows, tag, nil)
}

// runFunctionalTeraSortWith is runFunctionalTeraSort with a per-cluster
// setup hook (e.g. installing a fabric latency model before the job runs).
func runFunctionalTeraSortWith(b *testing.B, engine mapred.ShuffleEngine, conf *config.Config, rows int64, tag string, setup func(*mapred.Cluster)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := mapred.NewCluster(3, conf, engine)
		if err != nil {
			b.Fatal(err)
		}
		if setup != nil {
			setup(c)
		}
		fs := c.FS()
		paths, err := workload.TeraGen(fs, "/in", rows, 32<<10, 1)
		if err != nil {
			b.Fatal(err)
		}
		sample, err := workload.SampleKeys(fs, paths, mapred.TeraInput, 100)
		if err != nil {
			b.Fatal(err)
		}
		part, err := kv.NewTotalOrderPartitioner(kv.SampleSplits(sample, 6))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.RunJob(context.Background(), &mapred.Job{
			Name: fmt.Sprintf("%s-%d", tag, i), Input: paths, Output: fmt.Sprintf("/out%d", i),
			InputFormat: mapred.TeraInput, Partitioner: part, NumReduces: 6,
		}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Close()
	}
	b.SetBytes(rows * workload.TeraRecordLen)
}

// BenchmarkFunctionalEngines compares the three shuffle engines moving
// real records through real transports (experiment E8).
func BenchmarkFunctionalEngines(b *testing.B) {
	b.Run("vanilla-http", func(b *testing.B) {
		runFunctionalTeraSort(b, httpshuffle.New(), functionalConf(), 3000, "v")
	})
	b.Run("hadoop-a", func(b *testing.B) {
		runFunctionalTeraSort(b, hadoopa.New(), functionalConf(), 3000, "h")
	})
	b.Run("osu-ib-rdma", func(b *testing.B) {
		runFunctionalTeraSort(b, core.New(), functionalConf(), 3000, "o")
	})
}

// BenchmarkAblationChunkedTransfer compares chunked key-value transfer
// (D1) against whole-partition packets on the functional OSU engine.
func BenchmarkAblationChunkedTransfer(b *testing.B) {
	b.Run("chunked-4KB", func(b *testing.B) {
		conf := functionalConf()
		conf.SetInt(config.KeyRDMAPacketBytes, 4096)
		runFunctionalTeraSort(b, core.New(), conf, 3000, "c4")
	})
	b.Run("whole-partition-1MB", func(b *testing.B) {
		conf := functionalConf()
		conf.SetInt(config.KeyRDMAPacketBytes, 1<<20)
		conf.SetInt(config.KeyKVPairsPerPacket, 1<<20)
		runFunctionalTeraSort(b, core.New(), conf, 3000, "cw")
	})
}

// BenchmarkAblationCachePolicy compares the priority cache policy (D2)
// against FIFO and against caching disabled.
func BenchmarkAblationCachePolicy(b *testing.B) {
	for _, mode := range []string{"priority", "fifo", "off"} {
		b.Run(mode, func(b *testing.B) {
			conf := functionalConf()
			if mode == "off" {
				conf.SetBool(config.KeyCachingEnabled, false)
			} else {
				conf.Set(config.KeyCachePriorityMode, mode)
			}
			runFunctionalTeraSort(b, core.New(), conf, 3000, "p"+mode[:1])
		})
	}
}

// BenchmarkAblationResponderPool sweeps the RDMAResponder pool size.
func BenchmarkAblationResponderPool(b *testing.B) {
	for _, n := range []int64{1, 4, 16} {
		b.Run(fmt.Sprintf("responders-%d", n), func(b *testing.B) {
			conf := functionalConf()
			conf.SetInt(config.KeyResponderThreads, n)
			runFunctionalTeraSort(b, core.New(), conf, 3000, fmt.Sprintf("r%d", n))
		})
	}
}

// BenchmarkAblationOutstandingDepth sweeps the RDMA copier's
// per-connection pipeline depth (mapred.rdma.outstanding.per.conn, the
// bounce-buffer ring size). Depth 1 reproduces the old lockstep
// request→wait→copy copier; deeper rings keep more DataRequests in
// flight per TaskTracker connection, hiding the round trip. The
// functional run injects amplified verbs latency (delay = modeled/0.05,
// i.e. 20×) so the round trip dominates; the job_vsec metric is the
// deterministic paper-scale signal from the simulator's no-cache path,
// where the residual per-chunk stall scales with depth.
func BenchmarkAblationOutstandingDepth(b *testing.B) {
	for _, depth := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			conf := functionalConf()
			conf.SetInt(config.KeyRDMAPacketBytes, 4096) // more chunks per segment
			conf.SetInt(config.KeyRDMAOutstandingPerConn, depth)
			runFunctionalTeraSortWith(b, core.New(), conf, 3000, fmt.Sprintf("d%d", depth),
				func(c *mapred.Cluster) {
					c.Trackers()[0].Fabric().Network().SetLatencyModel(fabric.Models(fabric.IBVerbs), 0.05)
				})
			p := sim.DefaultParams(sim.OSUIB, fabric.IBVerbs, storage.HDD1, sim.TeraSort, 8, 60e9)
			p.Caching = false
			p.FetchDepth = int(depth)
			res, err := sim.Run(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.JobSeconds, "job_vsec")
		})
	}
}

// BenchmarkAblationConnScale sweeps the D13 connection & registered-
// memory scaling model over cluster sizes the paper's testbed could
// never reach: per-node endpoint counts and pinned MR bytes for the
// legacy per-(fetcher, host) transport versus the shared connection
// plane (LRU-capped endpoints, SRQ receives, slab MR carves). The
// plane's series goes flat once remote hosts exceed cap + active fetch
// streams; the legacy series grows linearly without bound. Feeds the
// conn-scaling rows of BENCH_shuffle.json via `make bench-conn`.
func BenchmarkAblationConnScale(b *testing.B) {
	for _, nodes := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var pt sim.ConnScalePoint
			for i := 0; i < b.N; i++ {
				pt = sim.ConnScale(sim.ConnScaleParams{Nodes: nodes})
			}
			b.ReportMetric(float64(pt.LegacyConns), "legacy_conns")
			b.ReportMetric(float64(pt.PlaneConns), "plane_conns")
			b.ReportMetric(float64(pt.LegacyMRBytes)/1e6, "legacy_mr_mb")
			b.ReportMetric(float64(pt.PlaneMRBytes)/1e6, "plane_mr_mb")
		})
	}
}

// BenchmarkAblationOverlap compares streaming shuffle/merge/reduce
// overlap (D3) against the barrier hand-off on the simulator, where the
// pipelining effect is visible at paper scale.
func BenchmarkAblationOverlap(b *testing.B) {
	for _, overlap := range []bool{true, false} {
		name := "overlap"
		if !overlap {
			name = "barrier"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams(sim.OSUIB, fabric.IBVerbs, storage.HDD1, sim.TeraSort, 8, 60e9)
				p.Overlap = overlap
				res, err := sim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				last = res.JobSeconds
			}
			b.ReportMetric(last, "job_vsec")
		})
	}
}

// BenchmarkVerbsSendRecv measures the emulated verbs SEND/RECV path.
func BenchmarkVerbsSendRecv(b *testing.B) {
	net := verbs.NewNetwork()
	a, _ := net.NewDevice("a")
	d2, _ := net.NewDevice("b")
	cqA, cqB := a.CreateCQ(64), d2.CreateCQ(64)
	qpA, _ := a.CreateQP(cqA, cqA)
	qpB, _ := d2.CreateQP(cqB, cqB)
	_ = qpA.Connect("b", qpB.QPN())
	_ = qpB.Connect("a", qpA.QPN())
	src, _ := a.RegisterMemory(make([]byte, 4096))
	dst, _ := d2.RegisterMemory(make([]byte, 4096))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qpB.PostRecv(verbs.RecvWR{SGE: verbs.SGE{MR: dst, Length: 4096}})
		_ = qpA.PostSend(verbs.SendWR{Opcode: verbs.OpSend, SGE: verbs.SGE{MR: src, Length: 4096}})
		if wc, err := cqA.Wait(ctx); err != nil || wc.Status != verbs.WCSuccess {
			b.Fatalf("send: %v %v", wc, err)
		}
		if wc, err := cqB.Wait(ctx); err != nil || wc.Status != verbs.WCSuccess {
			b.Fatalf("recv: %v %v", wc, err)
		}
	}
	b.SetBytes(4096)
}

// BenchmarkVerbsRDMAWrite measures the emulated one-sided RDMA write
// path the shuffle data plane uses.
func BenchmarkVerbsRDMAWrite(b *testing.B) {
	for _, size := range []int{4 << 10, 128 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			net := verbs.NewNetwork()
			a, _ := net.NewDevice("a")
			d2, _ := net.NewDevice("b")
			cqA := a.CreateCQ(64)
			cqB := d2.CreateCQ(64)
			qpA, _ := a.CreateQP(cqA, cqA)
			qpB, _ := d2.CreateQP(cqB, cqB)
			_ = qpA.Connect("b", qpB.QPN())
			_ = qpB.Connect("a", qpA.QPN())
			src, _ := a.RegisterMemory(make([]byte, size))
			dst, _ := d2.RegisterMemory(make([]byte, size))
			ctx := context.Background()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = qpA.PostSend(verbs.SendWR{
					Opcode: verbs.OpRDMAWrite, SGE: verbs.SGE{MR: src, Length: size},
					RemoteAddr: dst.Addr(), RKey: dst.RKey(),
				})
				if wc, err := cqA.Wait(ctx); err != nil || wc.Status != verbs.WCSuccess {
					b.Fatalf("write: %v %v", wc, err)
				}
			}
		})
	}
}

// BenchmarkUCRMessaging measures the UCR end-point message round trip.
func BenchmarkUCRMessaging(b *testing.B) {
	f := ucr.NewFabric()
	sdev, _ := f.NewDevice("s")
	cdev, _ := f.NewDevice("c")
	l, _ := f.Listen(sdev, "svc")
	ctx := context.Background()
	cep, err := f.Connect(ctx, cdev, "s", "svc")
	if err != nil {
		b.Fatal(err)
	}
	sep, err := l.Accept(ctx)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cep.Send(ctx, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := sep.Recv(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(256)
}

// BenchmarkKWayMerge measures the priority-queue merge at reduce-side
// fan-ins typical of the paper's jobs.
func BenchmarkKWayMerge(b *testing.B) {
	for _, k := range []int{8, 64, 400} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runs := make([][]kv.Record, k)
			for i := range runs {
				recs := make([]kv.Record, 200)
				for j := range recs {
					recs[j] = kv.Record{Key: []byte(fmt.Sprintf("%03d-%05d", j%97, i*200+j)), Value: []byte("v")}
				}
				kv.SortRecords(recs, kv.BytesComparator)
				runs[i] = recs
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				its := make([]kv.Iterator, k)
				for i := range its {
					its[i] = kv.NewSliceIterator(runs[i])
				}
				m := kv.NewMerger(kv.BytesComparator, its...)
				count := 0
				for m.Next() {
					count++
				}
				if count != k*200 {
					b.Fatalf("merged %d, want %d", count, k*200)
				}
			}
		})
	}
}

// BenchmarkPrefetchCache measures PrefetchCache hit-path throughput.
func BenchmarkPrefetchCache(b *testing.B) {
	cache := core.NewPrefetchCache(1<<30, "priority", nil)
	data := make([]byte, 128<<10)
	for i := 0; i < 64; i++ {
		cache.Put(core.CacheKey{JobID: "j", MapID: i}, data, core.PriorityPrefetch)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cache.Get(core.CacheKey{JobID: "j", MapID: i % 64}); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkExtensionScaling runs the weak-scaling extension experiment
// (the paper's "larger clusters" future work).
func BenchmarkExtensionScaling(b *testing.B) { benchFigure(b, sim.FigScaling) }

// BenchmarkAblationBlockSize sweeps HDFS block size for the OSU design on
// the simulator — the tuning the paper performs in §IV ("we have
// identified the optimal values of HDFS block-size").
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, mb := range []float64{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("block-%0.fMB", mb), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams(sim.OSUIB, fabric.IBVerbs, storage.HDD1, sim.TeraSort, 8, 100e9)
				p.BlockSize = mb * (1 << 20)
				res, err := sim.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				last = res.JobSeconds
			}
			b.ReportMetric(last, "job_vsec")
		})
	}
}
