package rdmamr_test

import (
	"strings"
	"testing"

	"rdmamr/pkg/rdmamr"
)

// TestTracedTeraSortCoversJobLifecycle is the acceptance gate for the
// tracing plane, in-process: a traced TeraSort on the RDMA engine must
// emit a schema-valid Chrome trace with spans from at least two nodes
// covering the whole lifecycle — scheduler dispatch, map run and
// commit, shuffle fetch, merge, and reduce run through its commit.
func TestTracedTeraSortCoversJobLifecycle(t *testing.T) {
	res, err := rdmamr.TracedTeraSort(ctxT(t), 3, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.Trace.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rdmamr.ValidateChromeTrace(raw)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if len(stats.Nodes) < 2 {
		t.Fatalf("spans from %d nodes, want >= 2 (nodes %v)", len(stats.Nodes), stats.Nodes)
	}
	for _, cat := range []string{"sched", "map", "fetch", "merge", "reduce"} {
		if stats.Cats[cat] == 0 {
			t.Fatalf("no %q spans; cats = %v", cat, stats.Cats)
		}
	}
	// Name-level lifecycle: dispatches, map commits, per-reduce merges,
	// and reduce commits must all appear.
	prefixes := map[string]int{"dispatch ": 0, "commit m": 0, "merge r": 0, "commit r": 0}
	for name, n := range stats.Names {
		for p := range prefixes {
			if strings.HasPrefix(name, p) {
				prefixes[p] += n
			}
		}
	}
	for p, n := range prefixes {
		if n == 0 {
			t.Fatalf("no %q* spans in trace; names = %v", p, stats.Names)
		}
	}
	if stats.Completes == 0 {
		t.Fatal("no fetch complete-events in trace")
	}

	// A single node has no fabric to shuffle across — refuse rather
	// than emit a trace that cannot show a cross-node fetch.
	if _, err := rdmamr.TracedTeraSort(ctxT(t), 1, 1000, 1); err == nil {
		t.Fatal("1-node traced terasort accepted")
	}
}
