// Package rdmamr is the public API of the rdmamr library: a functional
// MapReduce runtime with pluggable shuffle engines — the paper's OSU-IB
// RDMA design (pre-fetching/caching TaskTracker cache, chunked
// priority-queue merge, shuffle/merge/reduce overlap), the Hadoop-A
// network-levitated-merge baseline, and vanilla socket/HTTP Hadoop — over
// an emulated InfiniBand verbs fabric, plus the workload generators and
// validators of the paper's evaluation.
//
// Quickstart:
//
//	conf := rdmamr.NewConfig()
//	conf.SetBool(rdmamr.KeyRDMAEnabled, true) // select the OSU-IB engine
//	cluster, err := rdmamr.NewCluster(4, conf)
//	defer cluster.Close()
//	// load input into cluster.FS(), then cluster.RunJob(ctx, &rdmamr.Job{...})
//
// The figure-scale performance simulator lives behind Figures and
// SimulateFigure; see EXPERIMENTS.md for the paper-vs-measured record.
package rdmamr

import (
	"fmt"

	"rdmamr/internal/config"
	"rdmamr/internal/core"
	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/shuffle/hadoopa"
	"rdmamr/internal/shuffle/httpshuffle"
	"rdmamr/internal/sim"
	"rdmamr/internal/workload"
)

// Re-exported core types. These aliases are the supported surface; the
// internal packages may reorganize without notice.
type (
	// Cluster is a functional MapReduce cluster.
	Cluster = mapred.Cluster
	// Job describes one MapReduce job.
	Job = mapred.Job
	// JobHandle is a submitted job: Wait blocks for its result, so any
	// number of jobs can run concurrently against one cluster.
	JobHandle = mapred.JobHandle
	// JobResult summarizes a completed job.
	JobResult = mapred.JobResult
	// Config is a Hadoop-style configuration.
	Config = config.Config
	// ShuffleEngine is the pluggable shuffle implementation seam.
	ShuffleEngine = mapred.ShuffleEngine
	// Record is a key-value pair.
	Record = kv.Record
	// Checksum is an order-independent record-multiset digest.
	Checksum = workload.Checksum
	// Figure is one regenerated evaluation figure.
	Figure = sim.Figure
)

// Configuration keys the paper exposes (§III-C.3).
const (
	KeyRDMAEnabled      = config.KeyRDMAEnabled
	KeyCachingEnabled   = config.KeyCachingEnabled
	KeyRDMAPacketBytes  = config.KeyRDMAPacketBytes
	KeyKVPairsPerPacket = config.KeyKVPairsPerPacket
	KeyBlockSize        = config.KeyBlockSize
	KeyMapSlots         = config.KeyMapSlots
	KeyReduceSlots      = config.KeyReduceSlots
	// KeyRDMAOutstandingPerConn sets the RDMA copier's bounce-buffer ring
	// depth per host connection (0 = follow KeyParallelCopies).
	KeyRDMAOutstandingPerConn = config.KeyRDMAOutstandingPerConn
	KeyParallelCopies         = config.KeyParallelCopies
	// Multi-tenant JobTracker keys (README "Multi-tenant scheduling").
	KeyJTMaxRunning    = config.KeyJTMaxRunning
	KeyJTCacheJobQuota = config.KeyJTCacheJobQuota
	KeySpeculativeMaps = config.KeySpeculativeMaps
)

// NewConfig returns a configuration at the paper's tuned defaults.
func NewConfig() *Config { return config.New() }

// NewCluster builds an n-node cluster, selecting the shuffle engine from
// mapred.rdma.enabled — true gives the OSU-IB RDMA engine, false the
// vanilla socket/HTTP engine — exactly the hybrid switch of Figure 2.
func NewCluster(n int, conf *Config) (*Cluster, error) {
	if conf == nil {
		conf = config.New()
	}
	var engine ShuffleEngine
	if conf.Bool(config.KeyRDMAEnabled) {
		engine = core.New()
	} else {
		engine = httpshuffle.New()
	}
	return mapred.NewCluster(n, conf, engine)
}

// NewClusterWithEngine builds a cluster on an explicit engine (see
// EngineByName).
func NewClusterWithEngine(n int, conf *Config, engine ShuffleEngine) (*Cluster, error) {
	return mapred.NewCluster(n, conf, engine)
}

// EngineByName returns a fresh shuffle engine: "vanilla-http",
// "hadoop-a", or "osu-ib-rdma".
func EngineByName(name string) (ShuffleEngine, error) {
	switch name {
	case "vanilla-http":
		return httpshuffle.New(), nil
	case "hadoop-a":
		return hadoopa.New(), nil
	case "osu-ib-rdma":
		return core.New(), nil
	default:
		return nil, fmt.Errorf("rdmamr: unknown engine %q (want vanilla-http, hadoop-a, or osu-ib-rdma)", name)
	}
}

// EngineNames lists the available shuffle engines.
func EngineNames() []string { return []string{"vanilla-http", "hadoop-a", "osu-ib-rdma"} }

// TeraGen writes rows of TeraSort input (100-byte records) under dir.
func TeraGen(c *Cluster, dir string, rows, maxFileBytes, seed int64) ([]string, error) {
	return workload.TeraGen(c.FS(), dir, rows, maxFileBytes, seed)
}

// RandomWriter writes ~totalBytes of variable-size records (the Sort
// benchmark's input) under dir.
func RandomWriter(c *Cluster, dir string, totalBytes, maxFileBytes, seed int64) ([]string, error) {
	return workload.RandomWriter(c.FS(), dir, totalBytes, maxFileBytes, seed)
}

// TeraSortJob assembles a TeraSort job: it samples the input, builds a
// total-order partitioner (so concatenated outputs are globally sorted),
// and returns the job plus the input checksum for TeraValidate.
func TeraSortJob(c *Cluster, name string, inputs []string, output string, reduces int) (*Job, Checksum, error) {
	sample, err := workload.SampleKeys(c.FS(), inputs, mapred.TeraInput, 1000)
	if err != nil {
		return nil, Checksum{}, err
	}
	part, err := kv.NewTotalOrderPartitioner(kv.SampleSplits(sample, reduces))
	if err != nil {
		return nil, Checksum{}, err
	}
	sum, err := workload.ChecksumInput(c.FS(), inputs, mapred.TeraInput)
	if err != nil {
		return nil, Checksum{}, err
	}
	return &Job{
		Name:        name,
		Input:       inputs,
		Output:      output,
		InputFormat: mapred.TeraInput,
		Partitioner: part,
		NumReduces:  reduces,
	}, sum, nil
}

// SortJob assembles a Sort job over RandomWriter input and returns the
// input checksum for validation.
func SortJob(c *Cluster, name string, inputs []string, output string, reduces int) (*Job, Checksum, error) {
	sum, err := workload.ChecksumInput(c.FS(), inputs, mapred.RunInput{})
	if err != nil {
		return nil, Checksum{}, err
	}
	return &Job{Name: name, Input: inputs, Output: output, NumReduces: reduces}, sum, nil
}

// TeraValidate checks a sorted job's output: every part internally
// sorted, parts globally ordered, and the record multiset equal to the
// input checksum.
func TeraValidate(c *Cluster, outputDir string, want Checksum) error {
	return workload.Validate(c.FS(), outputDir, kv.BytesComparator, want, true)
}

// ValidateMultiset checks output correctness without the global-order
// requirement (hash-partitioned Sort).
func ValidateMultiset(c *Cluster, outputDir string, want Checksum) error {
	return workload.Validate(c.FS(), outputDir, kv.BytesComparator, want, false)
}

// Figures regenerates every evaluation figure from the performance
// simulator, in paper order (4a, 4b, 5, 6a, 6b, 7, 8).
func Figures() []Figure { return sim.AllFigures() }

// PaperVsMeasured renders the calibration scorecard: every quantitative
// claim in the paper's §IV against this reproduction's measurement.
func PaperVsMeasured() string { return sim.ScoreReport(sim.DefaultCalibration()) }
