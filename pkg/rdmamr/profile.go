package rdmamr

import (
	"context"
	"fmt"

	"rdmamr/internal/config"
	"rdmamr/internal/obs"
)

// Report is a finished job's shuffle observability report: per-host
// fetch latency percentiles, time-to-first-byte per reduce, ring-slot
// occupancy, sampled fetch spans, and the measured map/shuffle/merge/
// reduce overlap timeline. Produced on JobResult.Profile when the job
// runs with KeyObsProfile, and served live by the debug endpoint when
// KeyObsHTTPAddr is set.
type Report = obs.Report

// Observability configuration keys.
const (
	// KeyObsProfile enables per-job shuffle profiling (fetch spans,
	// phase windows, per-host latency); off by default and free when off.
	KeyObsProfile = config.KeyObsProfile
	// KeyObsHTTPAddr, when set to a listen address, serves /metrics,
	// /profile and /profile.json over HTTP for the cluster's lifetime.
	KeyObsHTTPAddr = config.KeyObsHTTPAddr
)

// ProfiledSort runs an in-process Sort benchmark on the OSU-IB RDMA
// engine with shuffle profiling enabled, validates the output, and
// returns the result; JobResult.Profile carries the report. This is the
// one-call "show me the overlap" entry point behind `mrsim -profile`
// and `make profile-smoke`.
func ProfiledSort(ctx context.Context, nodes int, totalBytes int64, reduces int) (*JobResult, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("rdmamr: profiled sort needs >= 2 nodes (got %d), or no shuffle crosses the fabric", nodes)
	}
	conf := NewConfig()
	conf.SetBool(KeyRDMAEnabled, true)
	conf.SetBool(KeyObsProfile, true)
	c, err := NewCluster(nodes, conf)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// One file per map slot per node keeps every tracker shuffling.
	maxFile := totalBytes/int64(2*nodes) + 1
	files, err := RandomWriter(c, "/profile/in", totalBytes, maxFile, 42)
	if err != nil {
		return nil, err
	}
	job, sum, err := SortJob(c, "profiled-sort", files, "/profile/out", reduces)
	if err != nil {
		return nil, err
	}
	res, err := c.RunJob(ctx, job)
	if err != nil {
		return nil, err
	}
	if err := ValidateMultiset(c, "/profile/out", sum); err != nil {
		return nil, fmt.Errorf("rdmamr: profiled sort output invalid: %w", err)
	}
	if res.Profile == nil {
		return nil, fmt.Errorf("rdmamr: profiling enabled but no report produced")
	}
	return res, nil
}
