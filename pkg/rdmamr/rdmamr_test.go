package rdmamr_test

import (
	"context"
	"testing"
	"time"

	"rdmamr/pkg/rdmamr"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func smallConf() *rdmamr.Config {
	conf := rdmamr.NewConfig()
	conf.SetInt(rdmamr.KeyBlockSize, 64<<10)
	conf.SetInt(rdmamr.KeyMapSlots, 2)
	conf.SetInt(rdmamr.KeyReduceSlots, 2)
	return conf
}

func TestNewClusterHonorsRDMAEnabled(t *testing.T) {
	conf := smallConf()
	c, err := rdmamr.NewCluster(2, conf)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Engine().Name(); got != "vanilla-http" {
		t.Fatalf("default engine %q", got)
	}
	c.Close()

	conf.SetBool(rdmamr.KeyRDMAEnabled, true)
	c, err = rdmamr.NewCluster(2, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Engine().Name(); got != "osu-ib-rdma" {
		t.Fatalf("rdma engine %q", got)
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range rdmamr.EngineNames() {
		e, err := rdmamr.EngineByName(name)
		if err != nil || e.Name() != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := rdmamr.EngineByName("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestTeraSortThroughFacade(t *testing.T) {
	conf := smallConf()
	conf.SetBool(rdmamr.KeyRDMAEnabled, true)
	c, err := rdmamr.NewCluster(3, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	paths, err := rdmamr.TeraGen(c, "/in", 1500, 16<<10, 11)
	if err != nil {
		t.Fatal(err)
	}
	job, sum, err := rdmamr.TeraSortJob(c, "ts", paths, "/out", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 1500 {
		t.Fatalf("checksum count %d", sum.Count)
	}
	if _, err := c.RunJob(ctxT(t), job); err != nil {
		t.Fatal(err)
	}
	if err := rdmamr.TeraValidate(c, "/out", sum); err != nil {
		t.Fatal(err)
	}
}

func TestSortThroughFacade(t *testing.T) {
	c, err := rdmamr.NewClusterWithEngine(2, smallConf(), mustEngine(t, "hadoop-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	paths, err := rdmamr.RandomWriter(c, "/in", 96<<10, 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	job, sum, err := rdmamr.SortJob(c, "sort", paths, "/out", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(ctxT(t), job); err != nil {
		t.Fatal(err)
	}
	if err := rdmamr.ValidateMultiset(c, "/out", sum); err != nil {
		t.Fatal(err)
	}
	// Global order is NOT guaranteed under hash partitioning; the strict
	// validator may reject it, and that must surface as a validation
	// error rather than an I/O failure if it does.
	_ = rdmamr.TeraValidate(c, "/out", sum)
}

func mustEngine(t *testing.T, name string) rdmamr.ShuffleEngine {
	t.Helper()
	e, err := rdmamr.EngineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProfiledSortFacade(t *testing.T) {
	res, err := rdmamr.ProfiledSort(ctxT(t), 3, 2<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Profile
	if rep == nil || rep.Fetches == 0 || len(rep.Hosts) == 0 {
		t.Fatalf("thin report: %+v", rep)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if _, err := rdmamr.ProfiledSort(ctxT(t), 1, 1<<20, 1); err == nil {
		t.Fatal("single-node profiled sort must be rejected")
	}
}
