package rdmamr

import (
	"context"
	"fmt"

	"rdmamr/internal/config"
	"rdmamr/internal/obs"
)

// JobTrace is a finished job's lifecycle trace: scheduler dispatch, map
// run/commit, shuffle fetches, merge, and reduce run/commit spans, one
// lane per task slot per node. ChromeTrace() exports it as Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Produced on JobResult.Trace when the job runs with
// KeyObsTrace, and served at /trace.json when KeyObsHTTPAddr is set.
type JobTrace = obs.JobTrace

// TraceStats summarizes a validated Chrome trace (event counts per
// phase/category, distinct nodes) — the assertion surface behind
// `mrsim -trace-check` and `make trace-smoke`.
type TraceStats = obs.TraceStats

// KeyObsTrace enables job-lifecycle tracing; off by default and nearly
// free when off (one nil check per instrumented site).
const KeyObsTrace = config.KeyObsTrace

// ValidateChromeTrace checks raw is well-formed Chrome trace-event JSON
// (parses, and every duration-begin event has a matching end in LIFO
// order per lane) and returns summary stats.
func ValidateChromeTrace(raw []byte) (*TraceStats, error) {
	return obs.ValidateChromeTrace(raw)
}

// TracedTeraSort runs an in-process TeraSort on the OSU-IB RDMA engine
// with job-lifecycle tracing enabled, validates the output, and returns
// the result; JobResult.Trace carries the trace. This is the one-call
// "show me the timeline" entry point behind `mrsim -trace` and
// `make trace-smoke`.
func TracedTeraSort(ctx context.Context, nodes int, rows int64, reduces int) (*JobResult, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("rdmamr: traced terasort needs >= 2 nodes (got %d), or no shuffle crosses the fabric", nodes)
	}
	conf := NewConfig()
	conf.SetBool(KeyRDMAEnabled, true)
	conf.SetBool(KeyObsTrace, true)
	c, err := NewCluster(nodes, conf)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// One file per map slot per node keeps every tracker mapping and
	// shuffling, so the trace shows spans on every node.
	maxFile := rows*100/int64(2*nodes) + 1
	files, err := TeraGen(c, "/trace/in", rows, maxFile, 42)
	if err != nil {
		return nil, err
	}
	job, sum, err := TeraSortJob(c, "traced-terasort", files, "/trace/out", reduces)
	if err != nil {
		return nil, err
	}
	res, err := c.RunJob(ctx, job)
	if err != nil {
		return nil, err
	}
	if err := ValidateMultiset(c, "/trace/out", sum); err != nil {
		return nil, fmt.Errorf("rdmamr: traced terasort output invalid: %w", err)
	}
	if res.Trace == nil {
		return nil, fmt.Errorf("rdmamr: tracing enabled but no trace produced")
	}
	return res, nil
}
