# Tier-1 gate plus convenience targets. `make verify` is what CI (and the
# next contributor) should run before merging.

GO ?= go

.PHONY: verify fmt vet build test race chaos bench-depth bench-shuffle bench-conn bench-smoke fuzz profile-smoke trace-smoke sched-smoke bench-obs

verify: fmt vet build race chaos profile-smoke trace-smoke sched-smoke bench-smoke

# Fail on any file gofmt would rewrite.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# D6 + D10 self-healing gate: seeded fault injection (QP severs,
# dropped and delayed sends, dead trackers, lost map outputs) plus
# scripted whole-node death (kill mid-shuffle without revive, composed
# with transport faults, and kill-then-revive), all under the race
# detector. Seeds are fixed in the tests for reproducibility; set
# RDMAMR_CHAOS_SEED to sweep other fault interleavings of the
# multi-host acceptance run. -count=1 defeats the test cache so the
# gate always executes.
chaos:
	$(GO) test -race -count=1 -run 'TestCopierHealsFromSeveredQP|TestCopierRequestDeadlineReissues|TestCopierLegacyEscalationNoRetries|TestCopierSeededChaosMultiHost|TestCopierBlacklistSharedAcrossFetchers' ./internal/core/
	$(GO) test -race -count=1 -run 'TestFaultMatrix|TestNodeDeath|TestRecoveryExhaustionFailsJob|TestConnCacheChurnChaos' ./internal/faultinject/
	$(GO) test -race -count=1 -run 'TestNodeSchedule' ./internal/chaos/

# D7 observability gate: run a real profiled Sort on the OSU-IB engine,
# emit the shuffle report as JSON, re-parse it, and fail unless fetch
# spans, per-host latency, TTFB, and a nonzero shuffle/merge overlap all
# came out the other side. The JSON goes to /dev/null; the check verdict
# prints on stderr.
profile-smoke:
	$(GO) run ./cmd/mrsim -profile -profile-nodes 3 -profile-mb 2 -profile-reduces 3 -profile-json -profile-check >/dev/null

# D11 telemetry gate: run a real traced TeraSort, emit the Chrome
# trace-event JSON, and fail unless it is well-formed (balanced B/E
# lanes), spans at least two nodes, and shows every lifecycle phase
# (dispatch, map, fetch, merge, reduce) through the reduce commit.
trace-smoke:
	$(GO) run ./cmd/mrsim -trace -trace-nodes 3 -trace-rows 10000 -trace-reduces 3 -trace-check >/dev/null

# D12 multi-tenant gate: two concurrent TeraSorts on one real cluster —
# shared slot pool, fair-share dispatch, speculative maps, admission at
# max.running=2 — while a seeded chaos schedule kills a tracker mid-run.
# Fails unless both jobs commit byte-identical sorted output, exactly one
# node died, and the JobTracker's admission counters add up. Runs under
# the race detector: the scheduler is the most concurrent code we have.
sched-smoke:
	$(GO) run -race ./cmd/mrsim -sched -sched-check >/dev/null

# D7 overhead proof: the disabled-observability copier hot path must not
# allocate (0 B/op) or read the clock; the Enabled pair prices what a
# live profile + trace costs per chunk.
bench-obs:
	$(GO) test -run=NONE -bench='ObsOverheadDisabled|ObsOverheadEnabled' ./internal/core/

# Shuffle benchmark sweep → BENCH_shuffle.json: copier chunk-fetch
# allocation profile, copier pipeline depth, the D8 zero-copy responder
# ablation (zerocopy vs staging arms), and the D9 three-arm fetch
# ablation (read vs zerocopy vs staging, with responder busy-time and
# send counts per fetch).
bench-shuffle:
	$(GO) test -run=NONE -bench='AblationZeroCopy|AblationFetchArm|FetchChunkAllocs' -benchtime=2000x ./internal/core/ > BENCH_shuffle.txt
	$(GO) test -run=NONE -bench='ObsOverheadDisabled|ObsOverheadEnabled' ./internal/core/ >> BENCH_shuffle.txt
	$(GO) test -run=NONE -bench='AblationOutstandingDepth' -benchtime=200x . >> BENCH_shuffle.txt
	$(GO) test -run=NONE -bench='AblationConnScale' -benchtime=16x . >> BENCH_shuffle.txt
	$(GO) run ./cmd/benchjson < BENCH_shuffle.txt > BENCH_shuffle.json
	@rm -f BENCH_shuffle.txt
	@echo "wrote BENCH_shuffle.json"

# D13 connection & registered-memory scaling sweep: per-device endpoint
# counts and pinned MR bytes for the legacy per-(fetcher, host)
# transport vs the shared connection plane at {16, 64, 256, 1024} sim
# nodes. Folds its rows into BENCH_shuffle.json in place (benchjson
# -merge), leaving the other recorded benchmarks untouched.
bench-conn:
	$(GO) test -run=NONE -bench='AblationConnScale' -benchtime=16x . > BENCH_conn.txt
	$(GO) run ./cmd/benchjson -merge BENCH_shuffle.json < BENCH_conn.txt > BENCH_conn.json
	@mv BENCH_conn.json BENCH_shuffle.json
	@rm -f BENCH_conn.txt
	@echo "merged conn-scaling sweep into BENCH_shuffle.json"

# One-iteration smoke pass over every shuffle benchmark: the gate is
# that the harnesses build, run, and their internal assertions (e.g.
# "the read arm actually issued READs") hold — not the numbers.
bench-smoke:
	$(GO) test -run=NONE -bench='AblationFetchArm|AblationZeroCopy|FetchChunkAllocs' -benchtime=1x ./internal/core/
	$(GO) test -run=NONE -bench='AblationOutstandingDepth|AblationConnScale' -benchtime=1x .

# D5 ablation: copier outstanding-request depth (bounce-buffer ring).
bench-depth:
	$(GO) test -run=NONE -bench=AblationOutstandingDepth .
	$(GO) test -run=NONE -bench=FetchChunkAllocs ./internal/core/

# Short fuzz pass over the shuffle wire codecs.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataRequest -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataResponse -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzTakeString -fuzztime=10s ./internal/shuffle/wire/
