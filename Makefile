# Tier-1 gate plus convenience targets. `make verify` is what CI (and the
# next contributor) should run before merging.

GO ?= go

.PHONY: verify vet build test race chaos bench-depth fuzz

verify: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# D6 self-healing gate: seeded fault injection (QP severs, dropped and
# delayed sends, dead trackers, lost map outputs) under the race
# detector. Seeds are fixed in the tests for reproducibility; set
# RDMAMR_CHAOS_SEED to sweep other fault interleavings of the
# multi-host acceptance run. -count=1 defeats the test cache so the
# gate always executes.
chaos:
	$(GO) test -race -count=1 -run 'TestCopierHealsFromSeveredQP|TestCopierRequestDeadlineReissues|TestCopierLegacyEscalationNoRetries|TestCopierSeededChaosMultiHost|TestCopierBlacklistSharedAcrossFetchers' ./internal/core/
	$(GO) test -race -count=1 -run 'TestFaultMatrix' ./internal/faultinject/

# D5 ablation: copier outstanding-request depth (bounce-buffer ring).
bench-depth:
	$(GO) test -run=NONE -bench=AblationOutstandingDepth .
	$(GO) test -run=NONE -bench=FetchChunkAllocs ./internal/core/

# Short fuzz pass over the shuffle wire codecs.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataRequest -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataResponse -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzTakeString -fuzztime=10s ./internal/shuffle/wire/
