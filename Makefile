# Tier-1 gate plus convenience targets. `make verify` is what CI (and the
# next contributor) should run before merging.

GO ?= go

.PHONY: verify vet build test race bench-depth fuzz

verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# D5 ablation: copier outstanding-request depth (bounce-buffer ring).
bench-depth:
	$(GO) test -run=NONE -bench=AblationOutstandingDepth .
	$(GO) test -run=NONE -bench=FetchChunkAllocs ./internal/core/

# Short fuzz pass over the shuffle wire codecs.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataRequest -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzDecodeDataResponse -fuzztime=10s ./internal/shuffle/wire/
	$(GO) test -run=NONE -fuzz=FuzzTakeString -fuzztime=10s ./internal/shuffle/wire/
