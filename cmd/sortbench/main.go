// Command sortbench runs the functional Sort benchmark (variable-size
// records, §IV-C) end-to-end: RandomWriter → Sort → validation, with a
// selectable shuffle engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		engineName = flag.String("engine", "osu-ib-rdma", "shuffle engine: vanilla-http, hadoop-a, osu-ib-rdma")
		nodes      = flag.Int("nodes", 4, "cluster size")
		megabytes  = flag.Int64("mb", 64, "input volume in MiB")
		reduces    = flag.Int("reduces", 0, "reduce tasks (0 = 2 per node)")
	)
	flag.Parse()

	engine, err := rdmamr.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	conf := rdmamr.NewConfig()
	conf.SetInt(rdmamr.KeyBlockSize, 1<<20) // Sort uses small blocks (64 MB at paper scale)
	cluster, err := rdmamr.NewClusterWithEngine(*nodes, conf, engine)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	r := *reduces
	if r == 0 {
		r = *nodes * 2
	}
	fmt.Printf("RandomWriter: ~%d MiB of variable-size records (kv ≤ 20,000 B)...\n", *megabytes)
	paths, err := rdmamr.RandomWriter(cluster, "/sort/in", *megabytes<<20, 1<<20, time.Now().UnixNano()%1e6)
	if err != nil {
		log.Fatal(err)
	}
	job, checksum, err := rdmamr.SortJob(cluster, "sort", paths, "/sort/out", r)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := rdmamr.ValidateMultiset(cluster, "/sort/out", checksum); err != nil {
		log.Fatalf("validation FAILED: %v", err)
	}
	fmt.Printf("Sort (%s): %d records (%.1f MiB) in %v — validation PASSED\n",
		engine.Name(), checksum.Count, float64(checksum.Bytes)/(1<<20), elapsed.Round(time.Millisecond))
	fmt.Printf("  maps=%d reduces=%d\n", res.NumMaps, res.NumReduces)
	for _, k := range []string{"shuffle.http.packets", "shuffle.hadoopa.packets", "shuffle.rdma.packets",
		"tracker.mapoutput.disk.reads", "cache.hits", "cache.misses"} {
		if v := res.Counters[k]; v != 0 {
			fmt.Printf("  %-30s %d\n", k, v)
		}
	}
}
