// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON report (stdout), so `make bench-shuffle` can emit
// BENCH_shuffle.json for tracking copier/responder numbers across
// commits. Lines that are not benchmark results (headers, PASS/ok) are
// carried through to the "context" section where useful and otherwise
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"rdmamr/internal/config"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom units reported via b.ReportMetric.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the whole run, stamped with enough provenance to compare
// BENCH_shuffle.json files across commits: the git SHA the numbers were
// produced at, when, and the resolved (defaults included) configuration
// every benchmark inherits unless it overrides a key.
type Report struct {
	Goos      string            `json:"goos,omitempty"`
	Goarch    string            `json:"goarch,omitempty"`
	CPU       string            `json:"cpu,omitempty"`
	GitSHA    string            `json:"git_sha,omitempty"`
	Generated string            `json:"generated,omitempty"`
	Config    map[string]string `json:"config,omitempty"`
	// ObsOverhead is the measured cost of turning telemetry on, derived
	// from the BenchmarkObsOverhead{Disabled,Enabled} pair when both are
	// present in the run.
	ObsOverhead *ObsOverhead `json:"obs_overhead,omitempty"`
	Results     []Result     `json:"benchmarks"`
}

// ObsOverhead summarizes the enabled-vs-disabled observability pair:
// the disabled hot path's pinned 0 B/op claim and the per-op cost a
// live profile+trace adds.
type ObsOverhead struct {
	DisabledNsPerOp float64 `json:"disabled_ns_per_op"`
	EnabledNsPerOp  float64 `json:"enabled_ns_per_op"`
	DeltaNsPerOp    float64 `json:"delta_ns_per_op"`
	DisabledBPerOp  float64 `json:"disabled_b_per_op"`
	EnabledBPerOp   float64 `json:"enabled_b_per_op"`
}

// obsOverhead derives the summary from the parsed results; nil when the
// pair is incomplete.
func obsOverhead(results []Result) *ObsOverhead {
	var dis, en *Result
	for i := range results {
		switch results[i].Name {
		case "BenchmarkObsOverheadDisabled":
			dis = &results[i]
		case "BenchmarkObsOverheadEnabled":
			en = &results[i]
		}
	}
	if dis == nil || en == nil {
		return nil
	}
	return &ObsOverhead{
		DisabledNsPerOp: dis.NsPerOp,
		EnabledNsPerOp:  en.NsPerOp,
		DeltaNsPerOp:    en.NsPerOp - dis.NsPerOp,
		DisabledBPerOp:  dis.BytesPerOp,
		EnabledBPerOp:   en.BytesPerOp,
	}
}

// gitSHA resolves the current commit; empty (and omitted from the JSON)
// when the tree is not a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// merge folds the freshly parsed results into a prior report: a new
// result replaces the old row with the same name, everything else in the
// prior report is carried forward. This lets a focused sweep (e.g.
// `make bench-conn`) refresh its rows of BENCH_shuffle.json without
// rerunning every other benchmark.
func merge(prior Report, rep *Report) {
	fresh := make(map[string]bool, len(rep.Results))
	for _, r := range rep.Results {
		fresh[r.Name] = true
	}
	kept := make([]Result, 0, len(prior.Results)+len(rep.Results))
	for _, r := range prior.Results {
		if !fresh[r.Name] {
			kept = append(kept, r)
		}
	}
	rep.Results = append(kept, rep.Results...)
	if rep.Goos == "" {
		rep.Goos = prior.Goos
	}
	if rep.Goarch == "" {
		rep.Goarch = prior.Goarch
	}
	if rep.CPU == "" {
		rep.CPU = prior.CPU
	}
}

func main() {
	mergePath := flag.String("merge", "", "fold stdin's results into this prior report (new names replace old rows)")
	flag.Parse()
	rep := Report{
		GitSHA:    gitSHA(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config:    config.New().Snapshot(),
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *mergePath != "" {
		raw, err := os.ReadFile(*mergePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var prior Report
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *mergePath, err)
			os.Exit(1)
		}
		merge(prior, &rep)
	}
	rep.ObsOverhead = obsOverhead(rep.Results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName/sub-8   2000   19582 ns/op   3351.26 MB/s   1035 B/op   15 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, true
}
