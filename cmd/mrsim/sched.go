package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"rdmamr/internal/chaos"
	"rdmamr/internal/config"
	"rdmamr/internal/core"
	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/workload"
)

// runSched is the multi-tenant scheduler smoke behind `make sched-smoke`:
// two TeraSort jobs submitted concurrently to ONE cluster — shared slot
// pool, fair-share dispatch, speculative maps on — while a seeded chaos
// schedule kills a tracker mid-run and never revives it. Both jobs must
// finish with checksum-validated, globally sorted output. With check the
// run also asserts the scheduler's own accounting (exactly one kill, both
// jobs admitted, no queueing at max.running=2) and exits 2 on any miss.
func runSched(nodes int, rows int64, check bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	conf := config.New()
	// 250 ms: detection stays sub-second but a loaded -race run can't
	// spuriously expire live trackers (see nodeDeathConf in faultinject).
	conf.SetInt(config.KeyTrackerExpiry, 250)
	conf.SetInt(config.KeyRDMAConnectRetries, 8)
	conf.SetInt(config.KeyRDMARequestTimeout, 5000)
	conf.SetInt(config.KeyBlockSize, 64<<10)
	conf.SetInt(config.KeyJTMaxRunning, 2)
	conf.SetBool(config.KeySpeculativeMaps, true)

	inj := chaos.New(chaos.Config{Seed: 23})
	sched := chaos.WrapNodeSchedule(core.New(), inj, chaos.NodeCrash{AfterOutputs: 3})
	c, err := mapred.NewCluster(nodes, conf, sched)
	if err != nil {
		fatalf("sched: %v", err)
	}
	defer c.Close()
	sched.SetKiller(c)

	type tenant struct {
		name string
		want workload.Checksum
		out  string
		h    *mapred.JobHandle
	}
	tenants := make([]*tenant, 0, 2)
	for i, seed := range []int64{77, 104} {
		tn := &tenant{name: fmt.Sprintf("sched-%c", 'a'+i), out: fmt.Sprintf("/sched/%d/out", i)}
		in := fmt.Sprintf("/sched/%d/in", i)
		paths, err := workload.TeraGen(c.FS(), in, rows, 16<<10, seed)
		if err != nil {
			fatalf("sched: teragen: %v", err)
		}
		sample, err := workload.SampleKeys(c.FS(), paths, mapred.TeraInput, 100)
		if err != nil {
			fatalf("sched: sample: %v", err)
		}
		part, err := kv.NewTotalOrderPartitioner(kv.SampleSplits(sample, nodes))
		if err != nil {
			fatalf("sched: partitioner: %v", err)
		}
		tn.want, err = workload.ChecksumInput(c.FS(), paths, mapred.TeraInput)
		if err != nil {
			fatalf("sched: checksum: %v", err)
		}
		tn.h, err = c.Submit(ctx, &mapred.Job{
			Name: tn.name, Input: paths, Output: tn.out,
			InputFormat: mapred.TeraInput, Partitioner: part, NumReduces: nodes,
		})
		if err != nil {
			fatalf("sched: submit %s: %v", tn.name, err)
		}
		tenants = append(tenants, tn)
	}

	// Both handles resolve concurrently; the scheduler interleaves the two
	// jobs on the shared slots the whole time.
	for _, tn := range tenants {
		res, err := tn.h.Wait(ctx)
		if err != nil {
			fatalf("sched: job %s: %v", tn.name, err)
		}
		if err := workload.Validate(c.FS(), tn.out, kv.BytesComparator, tn.want, true); err != nil {
			fatalf("sched: job %s output invalid: %v", tn.name, err)
		}
		fmt.Fprintf(os.Stderr, "sched: job %s (%s) valid: %d maps, %d reduces, %d speculated\n",
			tn.name, res.JobID, res.Counters["map.tasks.completed"], res.Counters["reduce.tasks.completed"],
			res.Counters["mapred.map.task.attempts.speculated"])
	}
	sched.Wait()
	c.JobsReport().WriteText(os.Stdout)

	if !check {
		return
	}
	if kills := sched.Kills(); len(kills) != 1 {
		fatalf("sched-check: kills = %v, want exactly one", kills)
	}
	counters := c.Counters()
	if got := counters.Get("mapred.jobtracker.jobs.admitted"); got != 2 {
		fatalf("sched-check: jobs.admitted = %d, want 2", got)
	}
	if got := counters.Get("mapred.jobtracker.jobs.completed"); got != 2 {
		fatalf("sched-check: jobs.completed = %d, want 2", got)
	}
	if got := counters.Get("mapred.jobtracker.jobs.queued"); got != 0 {
		fatalf("sched-check: jobs.queued = %d, want 0 at max.running=2", got)
	}
	rep := c.JobsReport()
	done := 0
	for _, j := range rep.Jobs {
		if j.State == "succeeded" {
			done++
		}
	}
	if done != 2 {
		fatalf("sched-check: %d jobs succeeded in /jobs report, want 2", done)
	}
	fmt.Fprintf(os.Stderr, "sched-check ok: 2 tenants byte-identical across a node kill (%v), %d map + %d reduce slots shared\n",
		sched.Kills(), rep.TotalMapSlots, rep.TotalReduceSlots)
}
