// Command mrsim runs the figure-scale cluster simulator. With no flags it
// regenerates every evaluation figure; -figure selects one; -design,
// -fabric, -storage, -nodes, -size run a single custom configuration.
// -profile leaves the simulator entirely: it runs a real in-process Sort
// on the OSU-IB engine with shuffle profiling on and prints the measured
// report (fetch latency percentiles, TTFB, ring-slot occupancy, and the
// phase-overlap timeline).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rdmamr/internal/fabric"
	"rdmamr/internal/obs"
	"rdmamr/internal/sim"
	"rdmamr/internal/storage"
	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		figure   = flag.String("figure", "", "regenerate one figure: 4a, 4b, 5, 6a, 6b, 7, 8 (default: all)")
		design   = flag.String("design", "", "single run: vanilla, hadoopa, osu")
		fab      = flag.String("fabric", "ipoib", "single run: 1gige, 10gige, ipoib, verbs")
		store    = flag.String("storage", "1disk", "single run: 1disk, 2disks, ssd")
		workload = flag.String("workload", "terasort", "single run: terasort, sort")
		nodes    = flag.Int("nodes", 8, "single run: cluster size")
		sizeGB   = flag.Float64("size", 100, "single run: sort size in GB")
		caching  = flag.Bool("caching", true, "single run: OSU PrefetchCache enabled")
		timeline = flag.Bool("timeline", false, "print Figure 3's overlap timelines (vanilla vs OSU-IB)")

		profile   = flag.Bool("profile", false, "run a real profiled Sort on the OSU-IB engine and print the shuffle report")
		profNodes = flag.Int("profile-nodes", 3, "profile: cluster size")
		profMB    = flag.Float64("profile-mb", 4, "profile: input size in MB")
		profReds  = flag.Int("profile-reduces", 3, "profile: reduce count")
		profJSON  = flag.Bool("profile-json", false, "profile: emit the report as JSON instead of text")
		profCheck = flag.Bool("profile-check", false, "profile: re-parse the JSON report and fail unless shuffle/merge overlap > 0 (smoke gate)")

		trace      = flag.Bool("trace", false, "run a real traced TeraSort on the OSU-IB engine and emit the Chrome trace-event JSON (load in ui.perfetto.dev)")
		traceNodes = flag.Int("trace-nodes", 3, "trace: cluster size")
		traceRows  = flag.Int64("trace-rows", 20000, "trace: TeraSort input rows (100 B each)")
		traceReds  = flag.Int("trace-reduces", 3, "trace: reduce count")
		traceCheck = flag.Bool("trace-check", false, "trace: validate the emitted trace (balanced events, >= 2 nodes, all lifecycle phases present) — the smoke gate")

		schedRun   = flag.Bool("sched", false, "run two concurrent TeraSorts on one real cluster (shared slots, speculative maps, one chaos node kill) and print the /jobs report")
		schedNodes = flag.Int("sched-nodes", 4, "sched: cluster size")
		schedRows  = flag.Int64("sched-rows", 2000, "sched: TeraSort input rows per job (100 B each)")
		schedCheck = flag.Bool("sched-check", false, "sched: assert both jobs complete byte-identical, exactly one kill, and admission accounting — the smoke gate")
	)
	flag.Parse()

	if *schedRun {
		runSched(*schedNodes, *schedRows, *schedCheck)
		return
	}

	if *profile {
		runProfile(*profNodes, *profMB, *profReds, *profJSON, *profCheck)
		return
	}
	if *trace {
		runTrace(*traceNodes, *traceRows, *traceReds, *traceCheck)
		return
	}
	if *timeline {
		out, err := sim.Fig3Timelines()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
		return
	}
	if *design != "" {
		runSingle(*design, *fab, *store, *workload, *nodes, *sizeGB, *caching)
		return
	}

	figures := map[string]func() sim.Figure{
		"4a": sim.Fig4a, "4b": sim.Fig4b, "5": sim.Fig5,
		"6a": sim.Fig6a, "6b": sim.Fig6b, "7": sim.Fig7, "8": sim.Fig8,
	}
	if *figure != "" {
		fn, ok := figures[strings.ToLower(*figure)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 4a, 4b, 5, 6a, 6b, 7, 8)\n", *figure)
			os.Exit(2)
		}
		fmt.Println(fn())
		return
	}
	for _, f := range sim.AllFigures() {
		fmt.Println(f)
	}
}

func runSingle(design, fab, store, workload string, nodes int, sizeGB float64, caching bool) {
	designs := map[string]sim.Design{"vanilla": sim.Vanilla, "hadoopa": sim.HadoopA, "osu": sim.OSUIB}
	fabrics := map[string]fabric.Kind{"1gige": fabric.GigE1, "10gige": fabric.TenGigE, "ipoib": fabric.IPoIB, "verbs": fabric.IBVerbs}
	stores := map[string]storage.DeviceKind{"1disk": storage.HDD1, "2disks": storage.HDD2, "ssd": storage.SSD}
	workloads := map[string]sim.Workload{"terasort": sim.TeraSort, "sort": sim.Sort}

	d, ok := designs[strings.ToLower(design)]
	if !ok {
		fatalf("unknown design %q", design)
	}
	fk, ok := fabrics[strings.ToLower(fab)]
	if !ok {
		fatalf("unknown fabric %q", fab)
	}
	sk, ok := stores[strings.ToLower(store)]
	if !ok {
		fatalf("unknown storage %q", store)
	}
	w, ok := workloads[strings.ToLower(workload)]
	if !ok {
		fatalf("unknown workload %q", workload)
	}
	p := sim.DefaultParams(d, fk, sk, w, nodes, sizeGB*1e9)
	p.Caching = caching && d == sim.OSUIB
	res, err := sim.Run(p)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s %s on %v/%v, %d nodes, %.0f GB:\n", d, w, fk, sk, nodes, sizeGB)
	fmt.Printf("  job time      %8.1f s\n", res.JobSeconds)
	fmt.Printf("  map phase end %8.1f s\n", res.MapPhaseEnd)
	fmt.Printf("  shuffle end   %8.1f s\n", res.ShuffleEnd)
	fmt.Printf("  disk read     %8.1f GB\n", res.DiskBytesRead/1e9)
	fmt.Printf("  disk write    %8.1f GB\n", res.DiskBytesWrite/1e9)
	fmt.Printf("  network       %8.1f GB\n", res.NetBytes/1e9)
	if d == sim.OSUIB && caching {
		fmt.Printf("  cache         %d hits / %d misses\n", res.CacheHits, res.CacheMisses)
	}
}

// runProfile executes a real (non-simulated) Sort with profiling on and
// renders the measured shuffle report. With check, the emitted JSON is
// re-parsed exactly as a consumer would and the run fails unless the
// report proves shuffle and merge actually overlapped — the smoke gate
// behind `make profile-smoke`.
func runProfile(nodes int, mb float64, reduces int, asJSON, check bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := rdmamr.ProfiledSort(ctx, nodes, int64(mb*1e6), reduces)
	if err != nil {
		fatalf("profiled sort: %v", err)
	}
	rep := res.Profile
	raw, err := rep.JSON()
	if err != nil {
		fatalf("rendering report: %v", err)
	}
	if asJSON || check {
		fmt.Printf("%s\n", raw)
	}
	if !asJSON {
		fmt.Printf("%d nodes, %.1f MB sort, %d reduces — job %s in %v\n\n",
			nodes, mb, reduces, res.JobID, res.Duration.Round(time.Millisecond))
		fmt.Print(rep.Text())
	}
	if check {
		var back obs.Report
		if err := json.Unmarshal(raw, &back); err != nil {
			fatalf("profile-check: report JSON does not round-trip: %v", err)
		}
		if back.Fetches == 0 {
			fatalf("profile-check: no fetches observed")
		}
		if len(back.Hosts) == 0 || len(back.ReduceTTFB) == 0 {
			fatalf("profile-check: per-host stats or TTFB missing")
		}
		if ov := back.OverlapMs(obs.PhaseShuffle, obs.PhaseMerge); ov <= 0 {
			fatalf("profile-check: shuffle/merge overlap = %.3f ms, want > 0", ov)
		}
		fmt.Fprintf(os.Stderr, "profile-check ok: %d fetches, shuffle/merge overlap %.1f ms\n",
			back.Fetches, back.OverlapMs(obs.PhaseShuffle, obs.PhaseMerge))
	}
}

// runTrace executes a real (non-simulated) TeraSort with job-lifecycle
// tracing on and emits the Chrome trace-event JSON on stdout. With
// check, the emitted bytes are validated exactly as Perfetto would
// consume them and the run fails unless the trace is balanced, spans at
// least two nodes, and shows the full dispatch → map → fetch → merge →
// reduce-commit lifecycle — the smoke gate behind `make trace-smoke`.
func runTrace(nodes int, rows int64, reduces int, check bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := rdmamr.TracedTeraSort(ctx, nodes, rows, reduces)
	if err != nil {
		fatalf("traced terasort: %v", err)
	}
	raw, err := res.Trace.ChromeTrace()
	if err != nil {
		fatalf("rendering trace: %v", err)
	}
	fmt.Printf("%s\n", raw)
	if !check {
		return
	}
	stats, err := rdmamr.ValidateChromeTrace(raw)
	if err != nil {
		fatalf("trace-check: %v", err)
	}
	if len(stats.Nodes) < 2 {
		fatalf("trace-check: spans from %d nodes, want >= 2", len(stats.Nodes))
	}
	for _, cat := range []string{"sched", "map", "fetch", "merge", "reduce"} {
		if stats.Cats[cat] == 0 {
			fatalf("trace-check: no %q spans in trace", cat)
		}
	}
	commits := 0
	for name, n := range stats.Names {
		if strings.HasPrefix(name, "commit r") {
			commits += n
		}
	}
	if commits == 0 {
		fatalf("trace-check: no reduce commit spans")
	}
	fmt.Fprintf(os.Stderr, "trace-check ok: %d events (%d durations, %d fetches) across %d nodes, job %s in %v\n",
		stats.Events, stats.Durations, stats.Completes, len(stats.Nodes),
		res.JobID, res.Duration.Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
