// Command terasort runs the functional TeraSort benchmark end-to-end on
// an in-process cluster: TeraGen → TeraSort → TeraValidate, with a
// selectable shuffle engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		engineName = flag.String("engine", "osu-ib-rdma", "shuffle engine: vanilla-http, hadoop-a, osu-ib-rdma")
		nodes      = flag.Int("nodes", 4, "cluster size")
		rows       = flag.Int64("rows", 100000, "TeraGen rows (100 bytes each)")
		reduces    = flag.Int("reduces", 0, "reduce tasks (0 = 2 per node)")
		blockKB    = flag.Int64("block-kb", 1024, "HDFS block size in KiB")
		caching    = flag.Bool("caching", true, "mapred.local.caching.enabled")
	)
	flag.Parse()

	engine, err := rdmamr.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	conf := rdmamr.NewConfig()
	conf.SetInt(rdmamr.KeyBlockSize, *blockKB<<10)
	conf.SetBool(rdmamr.KeyCachingEnabled, *caching)
	cluster, err := rdmamr.NewClusterWithEngine(*nodes, conf, engine)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	r := *reduces
	if r == 0 {
		r = *nodes * 2
	}
	fmt.Printf("TeraGen: %d rows (%.1f MiB) across %d nodes...\n", *rows, float64(*rows*100)/(1<<20), *nodes)
	paths, err := rdmamr.TeraGen(cluster, "/tera/in", *rows, *blockKB<<10, time.Now().UnixNano()%1e6)
	if err != nil {
		log.Fatal(err)
	}
	job, checksum, err := rdmamr.TeraSortJob(cluster, "terasort", paths, "/tera/out", r)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := rdmamr.TeraValidate(cluster, "/tera/out", checksum); err != nil {
		log.Fatalf("TeraValidate FAILED: %v", err)
	}
	fmt.Printf("TeraSort (%s): %d records in %v — TeraValidate PASSED\n", engine.Name(), checksum.Count, elapsed.Round(time.Millisecond))
	fmt.Printf("  maps=%d reduces=%d output files=%d\n", res.NumMaps, res.NumReduces, len(res.OutputFiles))
	for _, k := range []string{"shuffle.http.bytes", "shuffle.hadoopa.bytes", "shuffle.rdma.bytes",
		"shuffle.rdma.packets", "tracker.mapoutput.disk.reads", "cache.hits", "cache.misses", "cache.prefetched"} {
		if v := res.Counters[k]; v != 0 {
			fmt.Printf("  %-30s %d\n", k, v)
		}
	}
}
