// Command experiments regenerates the paper's complete evaluation: every
// figure (4a, 4b, 5, 6a, 6b, 7, 8) from the performance simulator, plus
// the paper-vs-measured scorecard of every quantitative claim in §IV.
// This is the EXPERIMENTS.md generator.
package main

import (
	"flag"
	"fmt"

	"rdmamr/internal/sim"
)

func main() {
	var (
		scoreOnly = flag.Bool("score", false, "print only the paper-vs-measured scorecard")
		figsOnly  = flag.Bool("figures", false, "print only the regenerated figures")
		markdown  = flag.Bool("md", false, "emit Markdown tables (for EXPERIMENTS.md)")
	)
	flag.Parse()

	if !*scoreOnly {
		figures := sim.AllFigures()
		figures = append(figures, sim.FigScaling())
		for _, f := range figures {
			if *markdown {
				printMarkdown(f)
			} else {
				fmt.Println(f)
			}
		}
	}
	if !*figsOnly {
		fmt.Println("Paper-vs-measured scorecard (§IV claims):")
		fmt.Println(sim.ScoreReport(sim.DefaultCalibration()))
	}
}

func printMarkdown(f sim.Figure) {
	fmt.Printf("### %s\n\n", f.Name)
	fmt.Printf("| %s |", f.XLabel)
	for _, x := range f.XTicks {
		fmt.Printf(" %s |", x)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range f.XTicks {
		fmt.Print("---|")
	}
	fmt.Println()
	for _, s := range f.Series {
		fmt.Printf("| %s |", s.Label)
		for _, v := range s.Seconds {
			fmt.Printf(" %.0f |", v)
		}
		fmt.Println()
	}
	fmt.Println()
}
