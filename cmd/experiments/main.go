// Command experiments regenerates the paper's complete evaluation: every
// figure (4a, 4b, 5, 6a, 6b, 7, 8) from the performance simulator, plus
// the paper-vs-measured scorecard of every quantitative claim in §IV.
// -overlap appends the measured counterpart of Figure 3: a real profiled
// Sort's phase-overlap report next to the simulator's timelines. This is
// the EXPERIMENTS.md generator.
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"rdmamr/internal/sim"
	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		scoreOnly = flag.Bool("score", false, "print only the paper-vs-measured scorecard")
		figsOnly  = flag.Bool("figures", false, "print only the regenerated figures")
		markdown  = flag.Bool("md", false, "emit Markdown tables (for EXPERIMENTS.md)")
		overlap   = flag.Bool("overlap", false, "run a real profiled Sort and print its measured phase-overlap report (Figure 3, measured)")
	)
	flag.Parse()

	if *overlap {
		printOverlap()
		return
	}
	if !*scoreOnly {
		figures := sim.AllFigures()
		figures = append(figures, sim.FigScaling())
		for _, f := range figures {
			if *markdown {
				printMarkdown(f)
			} else {
				fmt.Println(f)
			}
		}
	}
	if !*figsOnly {
		fmt.Println("Paper-vs-measured scorecard (§IV claims):")
		fmt.Println(sim.ScoreReport(sim.DefaultCalibration()))
	}
}

// printOverlap is Figure 3 measured instead of modeled: the simulator's
// overlap timelines followed by a real profiled Sort's report, whose
// phase-overlap section is produced from fetch spans and phase marks
// recorded inside the running shuffle, not from the DES model.
func printOverlap() {
	fmt.Println("Figure 3, simulated (DES model):")
	fmt.Println()
	tl, err := sim.Fig3Timelines()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(tl)
	fmt.Println()
	fmt.Println("Figure 3, measured (real OSU-IB shuffle, profiled):")
	fmt.Println()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := rdmamr.ProfiledSort(ctx, 3, 8e6, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(res.Profile.Text())
}

func printMarkdown(f sim.Figure) {
	fmt.Printf("### %s\n\n", f.Name)
	fmt.Printf("| %s |", f.XLabel)
	for _, x := range f.XTicks {
		fmt.Printf(" %s |", x)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range f.XTicks {
		fmt.Print("---|")
	}
	fmt.Println()
	for _, s := range f.Series {
		fmt.Printf("| %s |", s.Label)
		for _, v := range s.Seconds {
			fmt.Printf(" %.0f |", v)
		}
		fmt.Println()
	}
	fmt.Println()
}
