// Sort benchmark with variable-size records (combined key+value up to
// 20,000 bytes, §IV-C): RandomWriter → Sort → validation, comparing the
// Hadoop-A baseline against the OSU-IB design. The interesting output is
// the packet count: size-oblivious count packing (Hadoop-A) versus the
// OSU engine's size-aware fill.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"rdmamr/internal/config"
	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		megabytes = flag.Int64("mb", 16, "input volume in MiB")
		nodes     = flag.Int("nodes", 3, "cluster size")
	)
	flag.Parse()

	for _, engineName := range []string{"hadoop-a", "osu-ib-rdma"} {
		engine, err := rdmamr.EngineByName(engineName)
		if err != nil {
			log.Fatal(err)
		}
		conf := rdmamr.NewConfig()
		conf.SetInt(rdmamr.KeyBlockSize, 64<<10)
		conf.SetInt(config.KeyRDMAPacketBytes, 32<<10)
		conf.SetInt(rdmamr.KeyKVPairsPerPacket, 64)
		cluster, err := rdmamr.NewClusterWithEngine(*nodes, conf, engine)
		if err != nil {
			log.Fatal(err)
		}

		paths, err := rdmamr.RandomWriter(cluster, "/sort/in", *megabytes<<20, 256<<10, 42)
		if err != nil {
			log.Fatal(err)
		}
		job, checksum, err := rdmamr.SortJob(cluster, "sort", paths, "/sort/out", *nodes*2)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		res, err := cluster.RunJob(context.Background(), job)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdmamr.ValidateMultiset(cluster, "/sort/out", checksum); err != nil {
			log.Fatalf("%s: validation FAILED: %v", engineName, err)
		}
		fmt.Printf("%-14s sorted %6d variable-size records (%.1f MiB) in %v\n",
			engineName, checksum.Count, float64(checksum.Bytes)/(1<<20), time.Since(start).Round(time.Millisecond))
		packets := res.Counters["shuffle.hadoopa.packets"] + res.Counters["shuffle.rdma.packets"]
		bytes := res.Counters["shuffle.hadoopa.bytes"] + res.Counters["shuffle.rdma.bytes"]
		if packets > 0 {
			fmt.Printf("  %d shuffle packets, mean packet %0.1f KiB\n", packets, float64(bytes)/float64(packets)/1024)
		}
		cluster.Close()
	}
}
