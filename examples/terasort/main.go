// TeraSort end-to-end on all three shuffle engines: TeraGen →
// TeraSort → TeraValidate, with per-engine wall time and shuffle
// characteristics — the functional half of the paper's TeraSort
// evaluation (§IV-B) at laptop scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"rdmamr/pkg/rdmamr"
)

func main() {
	var (
		rows  = flag.Int64("rows", 20000, "TeraGen rows (100 bytes each)")
		nodes = flag.Int("nodes", 4, "cluster size")
	)
	flag.Parse()

	for _, engineName := range rdmamr.EngineNames() {
		runOne(engineName, *nodes, *rows)
	}
}

func runOne(engineName string, nodes int, rows int64) {
	engine, err := rdmamr.EngineByName(engineName)
	if err != nil {
		log.Fatal(err)
	}
	conf := rdmamr.NewConfig()
	conf.SetInt(rdmamr.KeyBlockSize, 256<<10)
	cluster, err := rdmamr.NewClusterWithEngine(nodes, conf, engine)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	paths, err := rdmamr.TeraGen(cluster, "/tera/in", rows, 128<<10, 2013)
	if err != nil {
		log.Fatal(err)
	}
	job, checksum, err := rdmamr.TeraSortJob(cluster, "terasort", paths, "/tera/out", nodes*2)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	if err := rdmamr.TeraValidate(cluster, "/tera/out", checksum); err != nil {
		log.Fatalf("%s: TeraValidate FAILED: %v", engineName, err)
	}

	fmt.Printf("%-14s sorted %8d records in %8v  (maps=%d reduces=%d)\n",
		engineName, checksum.Count, time.Since(start).Round(time.Millisecond), res.NumMaps, res.NumReduces)
	for _, k := range []string{
		"shuffle.http.bytes", "shuffle.hadoopa.bytes", "shuffle.rdma.bytes",
		"tracker.mapoutput.disk.reads", "cache.hits", "cache.misses",
	} {
		if v := res.Counters[k]; v != 0 {
			fmt.Printf("  %-30s %d\n", k, v)
		}
	}
}
