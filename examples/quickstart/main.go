// Quickstart: a word-count job on a 2-node cluster with the OSU-IB RDMA
// shuffle engine, using only the public rdmamr API.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	"rdmamr/internal/kv"
	"rdmamr/internal/mapred"
	"rdmamr/internal/workload"
	"rdmamr/pkg/rdmamr"
)

func main() {
	conf := rdmamr.NewConfig()
	conf.SetBool(rdmamr.KeyRDMAEnabled, true) // mapred.rdma.enabled=true → OSU-IB engine
	conf.SetInt(rdmamr.KeyBlockSize, 64<<10)

	cluster, err := rdmamr.NewCluster(2, conf)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: engine=%s nodes=%v\n", cluster.Engine().Name(), cluster.FS().DataNodes())

	// Load a small corpus.
	words := []string{"rdma", "shuffle", "merge", "rdma", "infiniband", "rdma", "shuffle"}
	if err := workload.WordGen(cluster.FS(), "/wc/in", words, 100); err != nil {
		log.Fatal(err)
	}

	job := &rdmamr.Job{
		Name:   "wordcount",
		Input:  []string{"/wc/in"},
		Output: "/wc/out",
		Mapper: func(_, value []byte, emit func(k, v []byte)) error {
			if len(value) > 0 {
				emit(value, []byte("1"))
			}
			return nil
		},
		Reducer: func(key []byte, values [][]byte, emit func(k, v []byte)) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
		InputFormat: mapred.LineInput{},
		NumReduces:  2,
	}
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: %d maps, %d reduces, %v\n", res.JobID, res.NumMaps, res.NumReduces, res.Duration)

	for _, p := range res.OutputFiles {
		data, err := cluster.FS().ReadFile(p)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := kv.NewRunReader(data)
		if err != nil {
			log.Fatal(err)
		}
		for rr.Next() {
			fmt.Printf("  %-12s %s\n", rr.Record().Key, rr.Record().Value)
		}
	}
	fmt.Printf("RDMA shuffle bytes: %d\n", res.Counters["shuffle.rdma.bytes"])
}
