// Caching demo: the paper's Figure 8 mechanism live at small scale — the
// same TeraSort with the OSU-IB engine, with the PrefetchCache on and
// off, reporting TaskTracker disk traffic and cache effectiveness
// (§III-B.3, §IV-D).
package main

import (
	"context"
	"fmt"
	"log"

	"rdmamr/internal/config"
	"rdmamr/pkg/rdmamr"
)

func main() {
	fmt.Println("mapred.local.caching.enabled ablation (OSU-IB engine)")
	for _, caching := range []bool{true, false} {
		run(caching)
	}
}

func run(caching bool) {
	conf := rdmamr.NewConfig()
	conf.SetBool(rdmamr.KeyRDMAEnabled, true)
	conf.SetBool(config.KeyCachingEnabled, caching)
	conf.SetInt(rdmamr.KeyBlockSize, 64<<10)
	// Small packets force many chunk requests per partition, so each
	// cache hit saves several disk reads.
	conf.SetInt(config.KeyRDMAPacketBytes, 2048)
	conf.SetInt(rdmamr.KeyKVPairsPerPacket, 16)

	cluster, err := rdmamr.NewCluster(3, conf)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	paths, err := rdmamr.TeraGen(cluster, "/in", 6000, 64<<10, 8)
	if err != nil {
		log.Fatal(err)
	}
	job, checksum, err := rdmamr.TeraSortJob(cluster, "cachedemo", paths, "/out", 6)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	if err := rdmamr.TeraValidate(cluster, "/out", checksum); err != nil {
		log.Fatal(err)
	}

	hits, misses := res.Counters["cache.hits"], res.Counters["cache.misses"]
	reads := res.Counters["tracker.mapoutput.disk.reads"]
	fmt.Printf("\ncaching=%v\n", caching)
	fmt.Printf("  tracker disk reads    %6d\n", reads)
	if caching {
		total := hits + misses
		fmt.Printf("  cache hits/misses     %6d / %d (%.0f%% hit rate)\n", hits, misses, 100*float64(hits)/float64(total))
		fmt.Printf("  prefetched partitions %6d\n", res.Counters["cache.prefetched"])
	}
}
