// Recovery demo: the paper's §VI future work ("handle faster recovery in
// case of task failures") implemented and visible. Map outputs are
// destroyed mid-job by a fault injector; reduce-side fetchers detect the
// loss, the recovery coordinator re-executes the maps on other nodes,
// and the job still produces a validated, globally sorted result.
package main

import (
	"context"
	"fmt"
	"log"

	"rdmamr/internal/faultinject"
	"rdmamr/internal/mapred"
	"rdmamr/pkg/rdmamr"
)

func main() {
	engine, err := rdmamr.EngineByName("osu-ib-rdma")
	if err != nil {
		log.Fatal(err)
	}
	// Destroy the outputs of maps 0, 1 and 2 the moment they complete.
	injected := faultinject.Wrap(engine, 0, 1, 2)

	conf := rdmamr.NewConfig()
	conf.SetInt(rdmamr.KeyBlockSize, 64<<10)
	cluster, err := rdmamr.NewClusterWithEngine(3, conf, injected)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	paths, err := rdmamr.TeraGen(cluster, "/in", 8000, 64<<10, 13)
	if err != nil {
		log.Fatal(err)
	}
	job, checksum, err := rdmamr.TeraSortJob(cluster, "recovery-demo", paths, "/out", 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running TeraSort with 3 map outputs sabotaged mid-job...")
	res, err := cluster.RunJob(context.Background(), job)
	if err != nil {
		log.Fatalf("job failed despite recovery: %v", err)
	}
	if err := rdmamr.TeraValidate(cluster, "/out", checksum); err != nil {
		log.Fatalf("TeraValidate FAILED: %v", err)
	}

	fmt.Printf("job %s completed and validated (%d records)\n", res.JobID, checksum.Count)
	fmt.Printf("  outputs destroyed        %d\n", res.Counters["faultinject.outputs.lost"])
	fmt.Printf("  fetch failures observed  %d\n", res.Counters["shuffle.fetch.failures"])
	fmt.Printf("  map tasks re-executed    %d\n", res.Counters["map.tasks.recovered"])
	fmt.Printf("  map attempts bound       %d per map\n", mapred.MaxMapRecoveries)
}
