module rdmamr

go 1.24
